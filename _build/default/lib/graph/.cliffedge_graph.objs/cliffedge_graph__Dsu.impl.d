lib/graph/dsu.ml: Array Graph Hashtbl List Node_id Node_set Option
