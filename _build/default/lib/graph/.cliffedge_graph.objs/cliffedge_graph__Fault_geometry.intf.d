lib/graph/fault_geometry.mli: Format Graph Node_id Node_set
