lib/graph/node_map.mli: Format Map Node_id Node_set
