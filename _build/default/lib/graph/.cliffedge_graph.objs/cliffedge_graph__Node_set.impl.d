lib/graph/node_set.ml: Array Cliffedge_prng Format List Node_id Set
