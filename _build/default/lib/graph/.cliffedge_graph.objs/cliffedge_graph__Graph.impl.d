lib/graph/graph.ml: Format List Node_id Node_map Node_set
