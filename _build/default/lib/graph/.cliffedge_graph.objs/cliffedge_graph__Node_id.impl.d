lib/graph/node_id.ml: Format Int List Map
