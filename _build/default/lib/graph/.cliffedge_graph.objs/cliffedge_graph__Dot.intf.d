lib/graph/dot.mli: Format Graph Node_id Node_set
