lib/graph/node_set.mli: Cliffedge_prng Format Node_id Set
