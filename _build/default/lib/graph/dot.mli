(** Graphviz export.

    Renders a knowledge graph, optionally highlighting crashed regions
    and their borders, so that scenarios can be inspected visually
    (`dot -Tpng`). *)

type style = {
  crashed : Node_set.t;  (** filled red *)
  border : Node_set.t;  (** filled orange *)
  names : Node_id.Names.t;  (** display names *)
}

val default_style : style

val to_string : ?style:style -> Graph.t -> string
(** DOT source for the graph. *)

val pp : ?style:style -> Format.formatter -> Graph.t -> unit

val write_file : ?style:style -> string -> Graph.t -> unit
(** Writes DOT source to the given path. *)
