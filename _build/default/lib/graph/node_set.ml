module Prng = Cliffedge_prng.Prng
include Set.Make (Node_id)

let of_ints is = of_list (List.map Node_id.of_int is)

let to_ints t = List.map Node_id.to_int (elements t)

let pp ppf t =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") Node_id.pp)
    (elements t)

let pp_named names ppf t =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (Node_id.Names.pp names))
    (elements t)

let to_string t = Format.asprintf "%a" pp t

let random_subset rng t ~keep_probability =
  filter (fun _ -> Prng.float rng 1.0 < keep_probability) t

let random_element rng t =
  if is_empty t then invalid_arg "Node_set.random_element: empty set";
  let arr = Array.of_list (elements t) in
  Prng.choose_array rng arr
