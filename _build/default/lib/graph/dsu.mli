(** Disjoint-set union (union-find) with path compression and union by
    rank.

    Substrate for incremental connected-component maintenance: the
    protocol's view construction (Algorithm 1, lines 5–11) needs the
    components of a {e growing} crashed set after every failure-detector
    event.  Recomputing them by BFS costs O(|crashed| · degree) per
    event; a DSU absorbs each new node in near-constant amortized time.
    The micro-benchmarks quantify the gap; the protocol implementation
    itself keeps the paper's literal [connectedComponents] call (its
    state must stay purely functional), which is fast enough at
    protocol scale — this module serves deployments tracking large
    regions. *)

type t
(** A dynamic union-find over non-negative integer elements. *)

val create : unit -> t

val mem : t -> int -> bool

val add : t -> int -> unit
(** Ensures the element exists (as a singleton when new). *)

val union : t -> int -> int -> unit
(** Merges the classes of two elements, adding them if absent. *)

val find : t -> int -> int
(** Canonical representative.  Adds the element when absent. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of elements. *)

val class_count : t -> int
(** Number of disjoint classes. *)

val classes : t -> int list list
(** The classes, each sorted ascending, ordered by minimum element. *)

(** Incremental connected components of a growing node subset of a
    fixed graph. *)
module Components : sig
  type dsu := t

  type t

  val create : Graph.t -> t

  val add : t -> Node_id.t -> unit
  (** Declares the node part of the tracked subset (e.g. newly detected
      as crashed), linking it with already-tracked neighbours. *)

  val components : t -> Node_set.t list
  (** Current components, by minimum element — equals
      [Graph.connected_components graph subset]. *)

  val dsu : t -> dsu
end
