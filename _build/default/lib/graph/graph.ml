type t = {
  adjacency : Node_set.t Node_map.t;
  edge_count : int;
}

let empty = { adjacency = Node_map.empty; edge_count = 0 }

let mem_node p t = Node_map.mem p t.adjacency

let neighbours t p =
  match Node_map.find_opt p t.adjacency with
  | Some s -> s
  | None -> Node_set.empty

let mem_edge p q t = Node_set.mem q (neighbours t p)

let add_node p t =
  if mem_node p t then t
  else { t with adjacency = Node_map.add p Node_set.empty t.adjacency }

let add_edge p q t =
  if Node_id.equal p q then invalid_arg "Graph.add_edge: self-loop";
  if mem_edge p q t then t
  else
    let t = add_node p (add_node q t) in
    let link a b adjacency =
      Node_map.add a (Node_set.add b (Node_map.find a adjacency)) adjacency
    in
    { adjacency = link p q (link q p t.adjacency); edge_count = t.edge_count + 1 }

let of_edge_ids l = List.fold_left (fun g (p, q) -> add_edge p q g) empty l

let of_edges l =
  of_edge_ids (List.map (fun (i, j) -> (Node_id.of_int i, Node_id.of_int j)) l)

let nodes t = Node_map.keys t.adjacency

let node_count t = Node_map.cardinal t.adjacency

let edge_count t = t.edge_count

let edges t =
  Node_map.fold
    (fun p neigh acc ->
      Node_set.fold
        (fun q acc -> if Node_id.compare p q < 0 then (p, q) :: acc else acc)
        neigh acc)
    t.adjacency []
  |> List.sort compare

let degree t p = Node_set.cardinal (neighbours t p)

let max_degree t =
  Node_map.fold (fun _ neigh acc -> max acc (Node_set.cardinal neigh)) t.adjacency 0

let border t s =
  Node_set.fold
    (fun p acc -> Node_set.union acc (Node_set.diff (neighbours t p) s))
    s Node_set.empty

let closed_neighbourhood t s = Node_set.union s (border t s)

let induced t s =
  let adjacency =
    Node_set.fold
      (fun p acc -> Node_map.add p (Node_set.inter (neighbours t p) s) acc)
      s Node_map.empty
  in
  let doubled =
    Node_map.fold (fun _ neigh acc -> acc + Node_set.cardinal neigh) adjacency 0
  in
  { adjacency; edge_count = doubled / 2 }

(* Breadth-first exploration of the component of [start] inside [s]. *)
let component_of t s start =
  let rec grow frontier seen =
    if Node_set.is_empty frontier then seen
    else
      let next =
        Node_set.fold
          (fun p acc -> Node_set.union acc (Node_set.inter (neighbours t p) s))
          frontier Node_set.empty
      in
      let next = Node_set.diff next seen in
      grow next (Node_set.union seen next)
  in
  let start_set = Node_set.singleton start in
  grow start_set start_set

let connected_components t s =
  let rec loop remaining acc =
    match Node_set.min_elt_opt remaining with
    | None -> List.rev acc
    | Some start ->
        let comp = component_of t s start in
        loop (Node_set.diff remaining comp) (comp :: acc)
  in
  loop (Node_set.inter s (nodes t)) []

let is_connected_subset t s =
  (not (Node_set.is_empty s))
  && Node_set.subset s (nodes t)
  &&
  match Node_set.min_elt_opt s with
  | None -> false
  | Some start -> Node_set.equal (component_of t s start) s

let is_region = is_connected_subset

let is_connected t = is_connected_subset t (nodes t)

let bfs_distances t source =
  let rec grow frontier dist acc =
    if Node_set.is_empty frontier then acc
    else
      let next =
        Node_set.fold
          (fun p acc -> Node_set.union acc (neighbours t p))
          frontier Node_set.empty
      in
      let next = Node_set.filter (fun p -> not (Node_map.mem p acc)) next in
      let acc = Node_set.fold (fun p acc -> Node_map.add p (dist + 1) acc) next acc in
      grow next (dist + 1) acc
  in
  if not (mem_node source t) then Node_map.empty
  else grow (Node_set.singleton source) 0 (Node_map.singleton source 0)

let ball t source ~radius =
  Node_map.fold
    (fun p d acc -> if d <= radius then Node_set.add p acc else acc)
    (bfs_distances t source)
    Node_set.empty

let pp_stats ppf t =
  let min_degree =
    Node_map.fold
      (fun _ neigh acc -> min acc (Node_set.cardinal neigh))
      t.adjacency max_int
  in
  let min_degree = if node_count t = 0 then 0 else min_degree in
  Format.fprintf ppf "graph: %d nodes, %d edges, degree %d..%d" (node_count t)
    (edge_count t) min_degree (max_degree t)

let pp ppf t =
  pp_stats ppf t;
  Node_map.iter
    (fun p neigh -> Format.fprintf ppf "@.  %a: %a" Node_id.pp p Node_set.pp neigh)
    t.adjacency
