(** The strict total order on regions of §3.1.

    [R ≻ S] iff (i) [R] contains more nodes than [S], or (ii) equal sizes
    but [R]'s border contains more nodes, or (iii) equal on both counts
    but [R] is greater according to a fixed strict total order on node
    sets (we use the lexicographic order provided by {!Node_set.compare},
    one of the instantiations the paper suggests).  The relation subsumes
    strict set inclusion, which the progress proof (Theorem 4) relies
    on. *)

val compare : Graph.t -> Node_set.t -> Node_set.t -> int
(** [compare g r s] is negative when [r ≺ s], zero when equal, positive
    when [r ≻ s]. *)

val compare_with :
  tiebreak:(Node_set.t -> Node_set.t -> int) ->
  Graph.t ->
  Node_set.t ->
  Node_set.t ->
  int
(** Like {!compare} but with a caller-chosen final tiebreak — the paper
    notes "the actual ordering relation on node sets does not matter",
    and experiment-level property tests exercise that claim.  [tiebreak]
    must be a strict total order on node sets (antisymmetric, zero only
    on equal sets); size and border-size remain the primary keys, which
    is what makes the ranking subsume strict inclusion. *)

val default_tiebreak : Node_set.t -> Node_set.t -> int
(** The lexicographic order used by {!compare}. *)

val lower : Graph.t -> Node_set.t -> Node_set.t -> bool
(** [lower g r s] is the paper's [r ≺ s]. *)

val max_ranked_region : Graph.t -> Node_set.t list -> Node_set.t
(** The paper's [maxRankedRegion]: highest-ranked region of a non-empty
    collection.
    @raise Invalid_argument on the empty list. *)

val pp_rank : Graph.t -> Format.formatter -> Node_set.t -> unit
(** Prints the ranking key [(size, border size, members)] of a region. *)
