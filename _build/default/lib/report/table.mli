(** ASCII table rendering for experiment output.

    The benchmark harness prints every regenerated experiment as one of
    these tables; EXPERIMENTS.md embeds them verbatim. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the row width mismatches the columns. *)

val add_rows : t -> string list list -> unit

val render : t -> string
(** Title, header, separator and aligned rows. *)

val print : t -> unit
(** [render] to stdout, followed by a blank line. *)

val cell : ('a, Format.formatter, unit, string) format4 -> 'a
(** [Format.asprintf] alias, for building cells tersely. *)

val title : t -> string

val to_csv : t -> Csv.t
(** The same data as a CSV document, for machine consumption
    ([bench/main.exe --csv]). *)

val set_csv_dir : string option -> unit
(** When set, every subsequent {!print} also writes the table to
    [<dir>/<slug-of-title>.csv] (the directory is created if needed).
    Harness-level switch; [None] (the default) disables it. *)

val slug : string -> string
(** Filesystem-safe lowercase identifier derived from a title, exposed
    for tests. *)
