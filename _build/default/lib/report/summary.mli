(** Descriptive statistics over float samples. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1); 0 for n <= 1 *)
  min : float;
  max : float;
  median : float;
  p90 : float;  (** 90th percentile (nearest-rank) *)
}

val of_list : float list -> t
(** @raise Invalid_argument on the empty list. *)

val of_ints : int list -> t

val pp : Format.formatter -> t -> unit
(** ["mean ± sd [min..max]"]. *)

val pp_terse : Format.formatter -> t -> unit
(** Just the mean, with one decimal. *)
