(** CSV export for experiment results.

    RFC-4180-style quoting: fields containing commas, quotes or
    newlines are wrapped in double quotes with embedded quotes
    doubled.  Used by the benchmark harness's [--csv] mode so that the
    experiment series can be re-plotted outside the repository. *)

type t

val create : columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the row width mismatches the header. *)

val render : t -> string
(** Header line plus one line per row, [\n]-terminated. *)

val write_file : t -> string -> unit

val escape : string -> string
(** Quoting rule for one field, exposed for tests. *)
