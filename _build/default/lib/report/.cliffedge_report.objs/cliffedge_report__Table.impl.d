lib/report/table.ml: Buffer Char Csv Filename Format List Printf String Sys
