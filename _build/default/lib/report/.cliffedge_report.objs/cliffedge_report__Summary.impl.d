lib/report/summary.ml: Array Float Format List
