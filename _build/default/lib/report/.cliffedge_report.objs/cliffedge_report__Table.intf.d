lib/report/table.mli: Csv Format
