lib/report/csv.mli:
