(** Stream framing.

    {!Codec} encodes one message to one byte string; a byte-stream
    transport (TCP, Unix sockets, pipes) additionally needs message
    boundaries.  Frames are varint-length-prefixed; the decoder is
    incremental and tolerates arbitrary chunking — a frame may arrive
    byte by byte, or many frames in one read. *)

val frame : string -> string
(** [frame payload] is the length prefix followed by the payload. *)

val max_frame_length : int
(** Upper bound accepted by the decoder (16 MiB): a corrupt prefix
    cannot make it buffer unboundedly. *)

type decoder
(** Incremental frame reassembler. *)

val decoder : unit -> decoder

val feed : decoder -> string -> string list
(** [feed d chunk] consumes the next chunk of the stream and returns the
    payloads of every frame completed by it, in stream order.
    @raise Wire.Decode_error when a length prefix exceeds
    {!max_frame_length}. *)

val pending_bytes : decoder -> int
(** Bytes buffered towards an incomplete frame. *)
