let max_frame_length = 16 * 1024 * 1024

let frame payload =
  let w = Wire.writer () in
  Wire.write_varint w (String.length payload);
  Wire.contents w ^ payload

type decoder = { mutable buffer : string }

let decoder () = { buffer = "" }

let pending_bytes d = String.length d.buffer

(* Attempts to read a varint at the head of [s]; returns
   [Some (value, bytes_consumed)] or [None] when more input is needed. *)
let parse_varint_prefix s =
  let rec loop i shift acc =
    if i >= String.length s then None
    else
      let byte = Char.code s.[i] in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then Some (acc, i + 1)
      else if shift > 56 then raise (Wire.Decode_error "frame length varint too long")
      else loop (i + 1) (shift + 7) acc
  in
  loop 0 0 0

let feed d chunk =
  d.buffer <- d.buffer ^ chunk;
  let rec extract acc =
    match parse_varint_prefix d.buffer with
    | None -> List.rev acc
    | Some (length, header) ->
        if length > max_frame_length then
          raise
            (Wire.Decode_error
               (Printf.sprintf "frame length %d exceeds the %d-byte cap" length
                  max_frame_length));
        if String.length d.buffer < header + length then List.rev acc
        else begin
          let payload = String.sub d.buffer header length in
          d.buffer <-
            String.sub d.buffer (header + length)
              (String.length d.buffer - header - length);
          extract (payload :: acc)
        end
  in
  extract []
