(** Versioned binary codecs for protocol messages.

    The simulator passes messages as OCaml values, but a deployment over
    a real transport needs a wire representation.  This module frames
    every protocol message as

    {v magic (1B) | version (1B) | kind (1B) | payload v}

    and encodes node sets with the delta compression of {!Wire}, so a
    round message costs a few bytes per border node — consistent with
    the abstract size accounting used by the experiments
    ({!Cliffedge.Message.units}).

    Codecs are polymorphic in the decision-value type through a
    {!value} codec pair; {!string_value} covers the common case. *)

type 'v value = {
  write : Wire.writer -> 'v -> unit;
  read : Wire.reader -> 'v;
}
(** How to put a decision value on the wire. *)

val string_value : string value

val int_value : int value

val encode : 'v value -> 'v Cliffedge.Message.t -> string
(** Frame and serialize one message. *)

val decode : 'v value -> string -> 'v Cliffedge.Message.t
(** Inverse of {!encode}; consumes the whole input.
    @raise Wire.Decode_error on anything malformed: bad magic,
    unsupported version, unknown kind, truncation or trailing bytes. *)

val version : int
(** Current wire version (encoded in every frame). *)
