exception Decode_error of string

let fail reader_pos fmt =
  Printf.ksprintf (fun s -> raise (Decode_error (Printf.sprintf "%s (at byte %d)" s reader_pos))) fmt

type writer = Buffer.t

let writer () = Buffer.create 64

let contents = Buffer.contents

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let at_end r = r.pos >= String.length r.data

let expect_end r =
  if not (at_end r) then
    fail r.pos "trailing garbage: %d byte(s) left" (String.length r.data - r.pos)

let write_u8 w v =
  if v < 0 || v > 255 then invalid_arg "Wire.write_u8: out of range";
  Buffer.add_char w (Char.chr v)

let read_u8 r =
  if at_end r then fail r.pos "unexpected end of input reading u8";
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let write_varint w v =
  if v < 0 then invalid_arg "Wire.write_varint: negative";
  let rec loop v =
    if v < 0x80 then write_u8 w v
    else begin
      write_u8 w (0x80 lor (v land 0x7f));
      loop (v lsr 7)
    end
  in
  loop v

let read_varint r =
  let rec loop shift acc =
    if shift > 62 then fail r.pos "varint too long";
    let byte = read_u8 r in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let write_bool w b = write_u8 w (if b then 1 else 0)

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | other -> fail (r.pos - 1) "invalid boolean byte %d" other

let write_string w s =
  write_varint w (String.length s);
  Buffer.add_string w s

let read_string r =
  let len = read_varint r in
  if r.pos + len > String.length r.data then
    fail r.pos "string length %d exceeds remaining input" len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let write_list w write_element l =
  write_varint w (List.length l);
  List.iter write_element l

let read_list r read_element =
  let count = read_varint r in
  (* A count can never exceed the remaining bytes (every element takes at
     least one byte): reject absurd counts before building the list. *)
  if count > String.length r.data - r.pos then
    fail r.pos "list count %d exceeds remaining input" count;
  List.init count (fun _ -> read_element ())

let write_int_set w is =
  let rec check previous = function
    | [] -> ()
    | i :: rest ->
        if i <= previous then
          invalid_arg "Wire.write_int_set: not strictly increasing non-negative";
        check i rest
  in
  check (-1) is;
  write_varint w (List.length is);
  ignore
    (List.fold_left
       (fun previous i ->
         write_varint w (i - previous - 1);
         i)
       (-1) is)

let read_int_set r =
  let count = read_varint r in
  if count > String.length r.data - r.pos then
    fail r.pos "set count %d exceeds remaining input" count;
  let previous = ref (-1) in
  List.init count (fun _ ->
      let delta = read_varint r in
      let v = !previous + 1 + delta in
      previous := v;
      v)
