(** Low-level binary wire format.

    Primitives shared by the message codecs: LEB128 variable-length
    integers, length-prefixed strings and lists, and delta-encoded
    sorted integer sets (node sets are sorted, so consecutive deltas
    are small and encode in one byte each for realistic ids).

    Decoding never trusts its input: every malformed prefix raises
    {!Decode_error} with a position, and all length fields are checked
    against the remaining input before allocation. *)

exception Decode_error of string
(** Raised on malformed input; the message includes the byte offset. *)

type writer
(** Append-only output buffer. *)

val writer : unit -> writer

val contents : writer -> string

type reader
(** Cursor over an immutable input string. *)

val reader : string -> reader

val at_end : reader -> bool
(** Whether every byte has been consumed. *)

val expect_end : reader -> unit
(** @raise Decode_error when trailing bytes remain. *)

(** {1 Primitives} *)

val write_u8 : writer -> int -> unit
(** @raise Invalid_argument outside [\[0, 255\]]. *)

val read_u8 : reader -> int

val write_varint : writer -> int -> unit
(** Unsigned LEB128; the value must be non-negative.
    @raise Invalid_argument on negatives. *)

val read_varint : reader -> int

val write_bool : writer -> bool -> unit

val read_bool : reader -> bool

val write_string : writer -> string -> unit
(** Varint length prefix followed by the raw bytes. *)

val read_string : reader -> string

val write_list : writer -> ('a -> unit) -> 'a list -> unit
(** Varint count followed by the elements; the element writer is
    expected to close over the same {!writer}. *)

val read_list : reader -> (unit -> 'a) -> 'a list

val write_int_set : writer -> int list -> unit
(** Delta-encodes a strictly increasing list of non-negative integers.
    @raise Invalid_argument when the list is not strictly increasing or
    contains negatives. *)

val read_int_set : reader -> int list
(** Inverse of {!write_int_set}; the result is strictly increasing.
    @raise Decode_error on malformed input. *)
