lib/codec/framing.ml: Char List Printf String Wire
