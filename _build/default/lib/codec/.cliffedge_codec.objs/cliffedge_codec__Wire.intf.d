lib/codec/wire.mli:
