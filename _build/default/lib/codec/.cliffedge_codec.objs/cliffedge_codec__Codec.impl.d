lib/codec/codec.ml: Cliffedge Cliffedge_graph List Node_id Node_map Node_set Printf Wire
