lib/codec/codec.mli: Cliffedge Wire
