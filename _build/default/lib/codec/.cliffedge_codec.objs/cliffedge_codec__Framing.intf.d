lib/codec/framing.mli:
