bench/main.ml: Array Cliffedge_report Experiments Format List Micro String Sys
