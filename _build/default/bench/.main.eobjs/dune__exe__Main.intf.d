bench/main.mli:
