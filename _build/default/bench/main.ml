(* Benchmark and experiment entry point.

   Usage:
     dune exec bench/main.exe            # everything: X1-X8 + micro
     dune exec bench/main.exe -- x4 x5   # selected experiments
     dune exec bench/main.exe -- micro   # bechamel micro-benchmarks only

   Each experiment regenerates one table of EXPERIMENTS.md. *)

let usage () =
  print_endline "usage: main.exe [x1 .. x8 | micro | all]";
  print_endline "  x1  Fig. 1(a): disjoint regions, independent agreements";
  print_endline "  x2  Fig. 1(b): cascade race F1 -> F3";
  print_endline "  x3  Fig. 2: adjacent faulty domains, progress";
  print_endline "  x4  locality: cost vs system size (vs global baseline)";
  print_endline "  x5  cost vs region size";
  print_endline "  x6  cascade depth vs restarts/convergence";
  print_endline "  x7  randomized CD1-CD7 validation matrix";
  print_endline "  x8  early-termination ablation (footnote 6)";
  print_endline "  x9  CD5 anomaly: raw vs channel-consistent failure detector";
  print_endline "  x10 exhaustive model checking of small configurations";
  print_endline "  x11 decide-once vs group-membership view churn";
  print_endline "  x12 overlay repair strategy ablation";
  print_endline "  x13 assumption ablation: false suspicions break CD2";
  print_endline "  x14 lifecycle churn: repeated waves over a self-healing overlay";
  print_endline "  x15 reaction time vs detection latency";
  print_endline "  micro  bechamel micro-benchmarks";
  print_endline "options:";
  print_endline "  --csv DIR   also write every table to DIR/<slug>.csv"

let run_experiment name =
  match List.assoc_opt name Experiments.all with
  | Some f ->
      Format.printf "@.";
      f ()
  | None when String.equal name "micro" -> Micro.run ()
  | None when String.equal name "all" ->
      Experiments.run_all ();
      Micro.run ()
  | None ->
      usage ();
      exit 1

(* Strips a leading [--csv DIR] option, configuring table CSV export. *)
let rec parse_options = function
  | "--csv" :: dir :: rest ->
      Cliffedge_report.Table.set_csv_dir (Some dir);
      parse_options rest
  | args -> args

let () =
  match parse_options (List.tl (Array.to_list Sys.argv)) with
  | [ arg ] when List.mem arg [ "-h"; "--help"; "help" ] -> usage ()
  | [] ->
      Experiments.run_all ();
      Micro.run ()
  | args -> List.iter run_experiment args
