(* Stable-predicate regions (the paper's §5 extension): instead of
   crashing, a region of nodes becomes *overloaded* — a stable condition
   under which a node withdraws from coordination duties.  The healthy
   nodes around the overloaded region agree on its exact extent and on a
   common mitigation plan (e.g. install a shared rate limit), using the
   unchanged cliff-edge machinery.

   Run with: dune exec examples/predicate_regions.exe *)

open Cliffedge_graph

let () =
  (* A 6x6 grid datacenter fabric. *)
  let graph = Topology.grid 6 6 in
  (* A hot spot spreads over a connected patch of the fabric: nodes
     overload (and withdraw) a few virtual seconds apart. *)
  let hot_spot = Node_set.of_ints [ 14; 15; 20; 21 ] in
  let flags =
    List.mapi
      (fun i p -> (10.0 +. (3.0 *. float_of_int i), p))
      (Node_set.elements hot_spot)
  in
  let propose_mitigation p view =
    Format.asprintf "rate-limit(by %a, %d nodes)" Node_id.pp p
      (Node_set.cardinal view)
  in
  let outcome =
    Cliffedge.Stable_predicate.detect ~propose_mitigation ~graph ~flags ()
  in
  Format.printf "%a@." Cliffedge.Stable_predicate.pp outcome;
  assert (Cliffedge.Stable_predicate.ok outcome);
  (* The healthy border agreed on the full hot spot. *)
  assert (
    List.exists
      (fun (r : Cliffedge.Stable_predicate.flagged_region) ->
        Node_set.equal r.region hot_spot)
      outcome.regions);
  Format.printf "predicate_regions: OK@."
