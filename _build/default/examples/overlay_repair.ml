(* Overlay repair: the application that motivated cliff-edge consensus
   (the authors' earlier work on generalised repair of overlay networks,
   [16] in the paper).

   A ring overlay loses two whole regions of nodes.  Each crashed
   region's border runs the protocol with a repair *planner* as its
   value proposer; the agreed decision value is a repair plan — edges to
   splice so the overlay stays connected.  Because the border nodes of a
   region decide the SAME plan (CD5), the repair is applied exactly once
   per region and the ring heals.

   Run with: dune exec examples/overlay_repair.exe *)

open Cliffedge_graph
module Repair = Cliffedge_repair.Session
module Plan = Cliffedge_repair.Plan
module Planner = Cliffedge_repair.Planner

let () =
  let graph = Topology.ring 32 in
  let region_a = Node_set.of_ints [ 10; 11; 12; 13 ] in
  let region_b = Node_set.of_ints [ 22; 23; 24 ] in
  let crashes =
    List.map (fun p -> (5.0, p)) (Node_set.elements region_a)
    @ List.map (fun p -> (7.0, p)) (Node_set.elements region_b)
  in
  let outcome = Repair.repair ~strategy:Planner.Ring_splice ~graph ~crashes () in
  Format.printf "%a@." Repair.pp outcome;
  assert (Cliffedge.Checker.ok outcome.report);
  (* Two independent splices, e.g. 9--14 and 21--25. *)
  assert (List.length outcome.plans = 2);
  List.iter (fun (_, plan) -> assert (Plan.edge_count plan = 1)) outcome.plans;
  assert outcome.healed;
  assert (Graph.is_connected outcome.healed_overlay);
  Format.printf "overlay ring healed: %d survivors, connected = %b@."
    (Graph.node_count outcome.healed_overlay)
    (Graph.is_connected outcome.healed_overlay);

  (* The same session with the star strategy also heals, with a
     different shape. *)
  let star = Repair.repair ~strategy:Planner.Star_rewire ~graph ~crashes () in
  assert star.healed;
  Format.printf "star strategy also heals (%d plan edges total)@."
    (List.fold_left (fun acc (_, p) -> acc + Plan.edge_count p) 0 star.plans);
  Format.printf "overlay_repair: OK@."
