(* Quickstart: crash a region of a small ring and watch its border agree.

   Run with: dune exec examples/quickstart.exe *)

open Cliffedge_graph

let () =
  (* A 12-node ring overlay. *)
  let graph = Topology.ring 12 in
  (* Nodes 3, 4 and 5 crash together at t=10: one crashed region whose
     border is {2, 6}. *)
  let region = Node_set.of_ints [ 3; 4; 5 ] in
  let crashes = List.map (fun p -> (10.0, p)) (Node_set.elements region) in
  let scenario =
    Cliffedge.Scenario.make ~name:"quickstart: ring with one crashed region" ~graph
      ~crashes ()
  in
  let outcome, report = Cliffedge.Scenario.execute scenario in
  Format.printf "%a@." Cliffedge.Scenario.pp_result (scenario, outcome, report);
  (* The two survivors bordering the region agree on its exact extent and
     on a common decision value. *)
  List.iter
    (fun (d : string Cliffedge.Runner.decision) ->
      assert (Node_set.equal d.view region))
    outcome.decisions;
  if Cliffedge.Checker.ok report then print_endline "quickstart: OK"
  else exit 1
