(* The paper's Fig. 1 scenarios, executable.

   (a) Two disjoint regions F1 (Europe) and F2 (Pacific) crash: their
       borders reach two independent agreements and — locality, CD3 —
       no message ever crosses hemispheres even though the graph is
       connected.

   (b) F1 crashes, and paris crashes while its border is still agreeing
       on F1.  The region grows into F3 = F1 ∪ {paris}; berlin joins the
       border; ranking arbitration rejects the stale F1 views and the
       survivors converge on F3 (CD6).

   Run with: dune exec examples/fig1_cascade.exe *)

open Cliffedge_graph
module P = Cliffedge.Paper_scenarios

let run_and_print scenario =
  let outcome, report = Cliffedge.Scenario.execute scenario in
  Format.printf "%a@.@." Cliffedge.Scenario.pp_result (scenario, outcome, report);
  if not (Cliffedge.Checker.ok report) then exit 1;
  outcome

let () =
  Format.printf "--- Fig. 1(a): disjoint regions ---@.";
  let outcome = run_and_print P.fig1a in
  (* Decided views are exactly F1 and F2. *)
  let views = Cliffedge.Runner.decided_views outcome in
  assert (List.exists (Node_set.equal P.f1) views);
  assert (List.exists (Node_set.equal P.f2) views);
  (* Locality, concretely: madrid and vancouver never exchanged a
     message. *)
  let madrid = P.city "madrid" and vancouver = P.city "vancouver" in
  let stats = outcome.stats in
  assert (Cliffedge_net.Stats.pair_count stats ~src:madrid ~dst:vancouver = 0);
  assert (Cliffedge_net.Stats.pair_count stats ~src:vancouver ~dst:madrid = 0);

  Format.printf "--- Fig. 1(b): cascade F1 -> F3 ---@.";
  let outcome = run_and_print (P.fig1b ()) in
  (* With paris crashing mid-agreement, every European decision converges
     on the grown region F3 (CD6 forbids mixed F1/F3 outcomes). *)
  let views = Cliffedge.Runner.decided_views outcome in
  List.iter
    (fun v ->
      if not (Node_set.is_empty (Node_set.inter v P.f1)) then
        assert (Node_set.equal v P.f3 || Node_set.equal v P.f1))
    views;
  Format.printf "fig1: OK@."
