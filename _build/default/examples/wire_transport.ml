(* Driving the pure protocol machine over *encoded bytes*: what a real
   deployment looks like.

   The simulator passes messages as OCaml values; here every Send action
   is serialized with the versioned binary codec, carried through an
   in-memory "socket" (a FIFO byte-queue per ordered channel), and
   decoded on the far side before being fed to the destination machine.
   The protocol cannot tell the difference — same decisions, byte counts
   now measurable for real.

   Run with: dune exec examples/wire_transport.exe *)

open Cliffedge_graph
module Protocol = Cliffedge.Protocol
module Codec = Cliffedge_codec.Codec

let graph = Topology.ring 8

let cfg =
  Protocol.config ~graph
    ~propose_value:(fun p v ->
      Format.asprintf "splice-by-%a-%d" Node_id.pp p (Node_set.cardinal v))
    ()

(* The byte transport: one FIFO queue of frames per ordered channel. *)
let sockets : (int * int, string Queue.t) Hashtbl.t = Hashtbl.create 16

let socket key =
  match Hashtbl.find_opt sockets key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace sockets key q;
      q

let bytes_on_wire = ref 0

let states : (int, string Protocol.state ref) Hashtbl.t = Hashtbl.create 16

let decisions = ref []

let crashed = Node_set.of_ints [ 3; 4 ]

let alive p = not (Node_set.mem p crashed)

let dispatch p event =
  if alive p then begin
    let cell = Hashtbl.find states (Node_id.to_int p) in
    let st, actions = Protocol.handle cfg !cell event in
    cell := st;
    List.iter
      (function
        | Protocol.Send { dst; msg } ->
            (* Value -> bytes at the sender... *)
            let frame = Codec.encode Codec.string_value msg in
            bytes_on_wire := !bytes_on_wire + String.length frame;
            Queue.add frame (socket (Node_id.to_int p, Node_id.to_int dst))
        | Protocol.Decide { view; value } -> decisions := (p, view, value) :: !decisions
        | Protocol.Monitor _ | Protocol.Note _ -> ())
      actions
  end

(* Pump the sockets until quiescence, decoding frames at the receiver. *)
let rec pump () =
  let delivered = ref false in
  Hashtbl.iter
    (fun (src, dst) q ->
      if (not (Queue.is_empty q)) && alive (Node_id.of_int dst) then begin
        delivered := true;
        let frame = Queue.take q in
        (* ...bytes -> value at the receiver. *)
        let msg = Codec.decode Codec.string_value frame in
        dispatch (Node_id.of_int dst)
          (Protocol.Deliver { src = Node_id.of_int src; msg })
      end)
    sockets;
  if !delivered then pump ()

let () =
  Node_set.iter
    (fun p -> Hashtbl.replace states (Node_id.to_int p) (ref (Protocol.init ~self:p)))
    (Graph.nodes graph);
  Node_set.iter (fun p -> dispatch p Protocol.Init) (Graph.nodes graph);
  (* Perfect-FD notifications, delivered to the survivors that monitor
     the crashed nodes (both remaining border nodes monitor both after
     the transitive widening). *)
  Node_set.iter
    (fun q ->
      Node_set.iter
        (fun observer -> if alive observer then dispatch observer (Protocol.Crash q))
        (Graph.neighbours graph q))
    crashed;
  (* Second wave: transitive monitoring discovered the rest. *)
  List.iter (fun p -> if alive p then dispatch p (Protocol.Crash (Node_id.of_int 4))) [ Node_id.of_int 2 ];
  List.iter (fun p -> if alive p then dispatch p (Protocol.Crash (Node_id.of_int 3))) [ Node_id.of_int 5 ];
  pump ();
  List.iter
    (fun (p, view, value) ->
      Format.printf "%a decides %S on %a@." Node_id.pp p value Node_set.pp view)
    (List.rev !decisions);
  assert (List.length !decisions = 2);
  List.iter
    (fun (_, view, value) ->
      assert (Node_set.equal view crashed);
      assert (String.equal value "splice-by-n2-2"))
    !decisions;
  Format.printf "total protocol bytes on the wire: %d@." !bytes_on_wire;
  Format.printf "wire_transport: OK@."
