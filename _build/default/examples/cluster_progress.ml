(* The paper's Fig. 2: a faulty *cluster* of four adjacent faulty
   domains.  This example shows why the progress property CD7 is
   deliberately weak: a border node shared by two adjacent domains only
   ever proposes the highest-ranked one, and its rejection of the
   lower-ranked neighbour can leave that domain's other border nodes
   undecided — yet at least one correct node of the cluster always
   decides.

   Run with: dune exec examples/cluster_progress.exe *)

open Cliffedge_graph
module P = Cliffedge.Paper_scenarios

let () =
  let scenario = P.fig2 in
  let outcome, report = Cliffedge.Scenario.execute scenario in
  Format.printf "%a@.@." Cliffedge.Scenario.pp_result (scenario, outcome, report);
  if not (Cliffedge.Checker.ok report) then exit 1;
  let deciders = Cliffedge.Runner.deciders outcome in
  Format.printf "deciders: %a@." Node_set.pp deciders;
  (* CD7: somebody in the cluster decided... *)
  assert (not (Node_set.is_empty deciders));
  (* ...and with this chain the ranking makes the *highest-ranked*
     domain win: its border nodes decide, while border nodes stuck
     between two domains may reject their lower-ranked side and block
     forever (the spec permits this). *)
  let highest = List.nth P.fig2_domains 3 in
  List.iter
    (fun (d : string Cliffedge.Runner.decision) ->
      Format.printf "  decision on %a by %a@." Node_set.pp d.view Node_id.pp d.node)
    outcome.decisions;
  assert (
    List.exists
      (fun (d : string Cliffedge.Runner.decision) -> Node_set.equal d.view highest)
      outcome.decisions);
  Format.printf "cluster_progress: OK@."
