examples/quickstart.ml: Cliffedge Cliffedge_graph Format List Node_set Topology
