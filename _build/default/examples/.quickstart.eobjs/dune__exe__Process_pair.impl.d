examples/process_pair.ml: Bytes Cliffedge Cliffedge_codec Cliffedge_graph Format List Node_id Node_set Option String Topology Unix
