examples/cluster_progress.ml: Cliffedge Cliffedge_graph Format List Node_id Node_set
