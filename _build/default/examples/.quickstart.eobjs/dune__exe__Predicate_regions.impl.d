examples/predicate_regions.ml: Cliffedge Cliffedge_graph Format List Node_id Node_set Topology
