examples/overlay_repair.ml: Cliffedge Cliffedge_graph Cliffedge_repair Format Graph List Node_set Topology
