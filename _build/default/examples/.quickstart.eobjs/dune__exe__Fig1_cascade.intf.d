examples/fig1_cascade.mli:
