examples/overlay_repair.mli:
