examples/quickstart.mli:
