examples/cluster_progress.mli:
