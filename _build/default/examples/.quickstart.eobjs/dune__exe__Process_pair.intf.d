examples/process_pair.mli:
