examples/wire_transport.mli:
