examples/predicate_regions.mli:
