examples/wire_transport.ml: Cliffedge Cliffedge_codec Cliffedge_graph Format Graph Hashtbl List Node_id Node_set Queue String Topology
