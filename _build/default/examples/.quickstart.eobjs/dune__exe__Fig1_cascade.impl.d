examples/fig1_cascade.ml: Cliffedge Cliffedge_graph Cliffedge_net Format List Node_set
