(* Tests for the whole-system flooding baseline. *)

open Cliffedge_graph
module Flooding = Cliffedge_baseline.Flooding
module Global_runner = Cliffedge_baseline.Global_runner

let set = Node_set.of_ints

let crash_all at region = List.map (fun p -> (at, p)) (Node_set.elements region)

let run ?options graph crashes = Global_runner.run ?options ~graph ~crashes ()

let test_everyone_decides_same_value () =
  let graph = Topology.ring 12 in
  let outcome = run graph (crash_all 5.0 (set [ 3; 4 ])) in
  Alcotest.(check bool) "quiescent" true outcome.quiescent;
  Alcotest.(check int) "all survivors decide" 10 (List.length outcome.decisions);
  Alcotest.(check bool) "agreement" true (Global_runner.agreement_ok outcome);
  (* The agreed value is the crashed set. *)
  match outcome.decisions with
  | d :: _ -> Alcotest.(check (list int)) "crashed set" [ 3; 4 ] (Node_set.to_ints d.value)
  | [] -> Alcotest.fail "no decisions"

let test_involves_whole_system () =
  let graph = Topology.ring 30 in
  let outcome = run graph (crash_all 5.0 (set [ 3; 4 ])) in
  let involved = Cliffedge_net.Stats.communicating_nodes outcome.stats in
  Alcotest.(check int) "everyone talks" 30 (Node_set.cardinal involved)

let test_cost_scales_with_system_size () =
  let cost n =
    let outcome = run (Topology.ring n) (crash_all 5.0 (set [ 3; 4 ])) in
    Cliffedge_net.Stats.sent outcome.stats
  in
  let small = cost 10 and big = cost 40 in
  (* Quadratic-ish growth: 4x nodes should cost way more than 4x. *)
  Alcotest.(check bool) "superlinear" true (big > 8 * small)

let test_no_crash_no_consensus () =
  let outcome = run (Topology.ring 10) [] in
  Alcotest.(check int) "no decisions" 0 (List.length outcome.decisions);
  Alcotest.(check int) "no messages" 0 (Cliffedge_net.Stats.sent outcome.stats)

let test_deterministic () =
  let graph = Topology.ring 10 in
  let a = run graph (crash_all 5.0 (set [ 3 ])) in
  let b = run graph (crash_all 5.0 (set [ 3 ])) in
  Alcotest.(check int) "same cost" (Cliffedge_net.Stats.sent a.stats)
    (Cliffedge_net.Stats.sent b.stats)

let test_survives_cascades () =
  let graph = Topology.ring 12 in
  let crashes = crash_all 5.0 (set [ 3; 4 ]) @ [ (18.0, Node_id.of_int 7) ] in
  let outcome = run graph crashes in
  Alcotest.(check bool) "quiescent" true outcome.quiescent;
  Alcotest.(check bool) "agreement under cascade" true
    (Global_runner.agreement_ok outcome);
  (* Every survivor decides. *)
  Alcotest.(check int) "nine deciders" 9
    (Node_set.cardinal (Global_runner.deciders outcome))

let test_machine_units () =
  let v = Node_map.of_list [ (Node_id.of_int 1, set [ 2; 3 ]) ] in
  Alcotest.(check int) "flood units" (4 + 1 + 2)
    (Flooding.msg_units (Flooding.Flood { round = 1; vector = v }));
  Alcotest.(check int) "decision units" (4 + 2)
    (Flooding.msg_units (Flooding.Decision (set [ 2; 3 ])))

let test_machine_monitors_everyone () =
  let graph = Topology.ring 6 in
  let st = Flooding.init ~graph ~self:(Node_id.of_int 0) in
  match Flooding.handle st Flooding.Init with
  | _, [ Flooding.Monitor targets ] ->
      Alcotest.(check int) "all others" 5 (Node_set.cardinal targets)
  | _ -> Alcotest.fail "expected one Monitor action"

let suite =
  ( "baseline",
    [
      Alcotest.test_case "uniform decisions" `Quick test_everyone_decides_same_value;
      Alcotest.test_case "whole system involved" `Quick test_involves_whole_system;
      Alcotest.test_case "superlinear cost" `Quick test_cost_scales_with_system_size;
      Alcotest.test_case "no crash, silent" `Quick test_no_crash_no_consensus;
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "cascades" `Quick test_survives_cascades;
      Alcotest.test_case "message units" `Quick test_machine_units;
      Alcotest.test_case "monitors everyone" `Quick test_machine_monitors_everyone;
    ] )
