(* Tests for the region ranking relation (§3.1). *)

open Cliffedge_graph

let set = Node_set.of_ints

(* Path 0-1-2-3-4-5-6 plus a hub 7 linked to 2 and 3: lets us build
   same-size regions with different border sizes. *)
let g = Graph.of_edges [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (7, 2); (7, 3) ]

let test_size_dominates () =
  Alcotest.(check bool) "bigger wins" true (Ranking.lower g (set [ 1 ]) (set [ 2; 3 ]));
  Alcotest.(check bool) "order strict" false (Ranking.lower g (set [ 2; 3 ]) (set [ 1 ]))

let test_border_breaks_ties () =
  (* |{2}| = |{0}| = 1; border({2}) = {1,3,7} (3 nodes) vs border({0}) =
     {1} (1 node): {0} ≺ {2}. *)
  Alcotest.(check bool) "bigger border wins" true (Ranking.lower g (set [ 0 ]) (set [ 2 ]));
  Alcotest.(check bool) "reverse is false" false (Ranking.lower g (set [ 2 ]) (set [ 0 ]))

let test_lexicographic_final_tiebreak () =
  (* {0} and {6} have size 1 and border size 1; the set order decides
     and must be antisymmetric. *)
  let a = set [ 0 ] and b = set [ 6 ] in
  let lower_ab = Ranking.lower g a b and lower_ba = Ranking.lower g b a in
  Alcotest.(check bool) "exactly one direction" true (lower_ab <> lower_ba)

let test_irreflexive () =
  let r = set [ 2; 3 ] in
  Alcotest.(check int) "compare self" 0 (Ranking.compare g r r);
  Alcotest.(check bool) "not lower than self" false (Ranking.lower g r r)

let test_subsumes_inclusion () =
  (* The progress proof needs R ⊂ S ⇒ R ≺ S (size strictly grows). *)
  Alcotest.(check bool) "subset is lower" true
    (Ranking.lower g (set [ 2; 3 ]) (set [ 2; 3; 4 ]))

let test_empty_is_bottom () =
  Alcotest.(check bool) "empty below singleton" true
    (Ranking.lower g Node_set.empty (set [ 0 ]));
  Alcotest.(check bool) "nothing below empty" false
    (Ranking.lower g (set [ 0 ]) Node_set.empty)

let test_max_ranked_region () =
  let best = Ranking.max_ranked_region g [ set [ 0 ]; set [ 2; 3 ]; set [ 4 ] ] in
  Alcotest.(check bool) "max" true (Node_set.equal (set [ 2; 3 ]) best)

let test_max_ranked_empty_rejected () =
  Alcotest.check_raises "empty collection"
    (Invalid_argument "Ranking.max_ranked_region: empty collection") (fun () ->
      ignore (Ranking.max_ranked_region g []))

(* Total strict order properties on random regions. *)

let gen_regions =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let rng = Cliffedge_prng.Prng.create seed in
    let graph = Topology.torus 5 5 in
    let region () =
      Cliffedge_workload.Fault_gen.connected_region rng graph
        ~size:(1 + Cliffedge_prng.Prng.int rng 8)
    in
    return (graph, region (), region (), region ()))

let prop_trichotomy =
  QCheck2.Test.make ~name:"ranking is a strict total order (trichotomy)" ~count:200
    gen_regions (fun (g, a, b, _) ->
      let ab = Ranking.compare g a b and ba = Ranking.compare g b a in
      (ab = 0) = Node_set.equal a b && compare ab 0 = compare 0 ba)

let prop_transitive =
  QCheck2.Test.make ~name:"ranking is transitive" ~count:200 gen_regions
    (fun (g, a, b, c) ->
      (not (Ranking.lower g a b && Ranking.lower g b c)) || Ranking.lower g a c)

let suite =
  ( "ranking",
    [
      Alcotest.test_case "size dominates" `Quick test_size_dominates;
      Alcotest.test_case "border tiebreak" `Quick test_border_breaks_ties;
      Alcotest.test_case "lexicographic tiebreak" `Quick test_lexicographic_final_tiebreak;
      Alcotest.test_case "irreflexive" `Quick test_irreflexive;
      Alcotest.test_case "subsumes inclusion" `Quick test_subsumes_inclusion;
      Alcotest.test_case "empty is bottom" `Quick test_empty_is_bottom;
      Alcotest.test_case "max ranked" `Quick test_max_ranked_region;
      Alcotest.test_case "max ranked empty" `Quick test_max_ranked_empty_rejected;
      QCheck_alcotest.to_alcotest prop_trichotomy;
      QCheck_alcotest.to_alcotest prop_transitive;
    ] )
