(* Regression tests for the uniformity finding (DESIGN.md §7).

   The paper's Algorithm 1 with |B|-1 rounds relies on crash
   notifications never overtaking the crashed node's in-flight messages.
   With a raw perfect failure detector that ordering can be violated:
   a node p completes the single round of a two-node border, decides,
   and crashes; its peer q is excused of p before p's accept arrives,
   aborts, and later decides the grown region — breaking CD5 (uniform
   border agreement).  Our channel-consistent detector (the default)
   restores the ordering the proof needs. *)

open Cliffedge_graph
module Runner = Cliffedge.Runner
module Checker = Cliffedge.Checker
module Scenario = Cliffedge.Scenario
module Fault_gen = Cliffedge_workload.Fault_gen
module Latency = Cliffedge_net.Latency
module Prng = Cliffedge_prng.Prng

let graph = Topology.ring 64

let adversarial_options ~channel_consistent_fd seed =
  {
    Runner.default_options with
    seed;
    channel_consistent_fd;
    message_latency = Latency.Exponential { min = 0.5; mean = 10.0 };
    detection_latency = Latency.Constant 1.0;
  }

let run_cascades ~channel_consistent_fd =
  List.map
    (fun seed ->
      let rng = Prng.create (77 + seed) in
      let seed_region =
        Fault_gen.connected_region_from rng graph ~seed_node:(Node_id.of_int 30)
          ~size:2
      in
      let crashes, _ =
        Fault_gen.cascade rng graph ~seed_region ~depth:3 ~start:10.0 ~interval:25.0
      in
      let outcome =
        Runner.run
          ~options:(adversarial_options ~channel_consistent_fd seed)
          ~graph ~crashes ~propose_value:Scenario.default_propose ()
      in
      Checker.check ~value_equal:String.equal outcome)
    (List.init 40 Fun.id)

let test_raw_fd_reproduces_anomaly () =
  let reports = run_cascades ~channel_consistent_fd:false in
  let cd5 =
    List.concat_map
      (fun r ->
        List.filter
          (fun v -> v.Checker.property = Checker.CD5_uniform_border_agreement)
          r.Checker.violations)
      reports
  in
  Alcotest.(check bool)
    "raw detector exhibits the CD5 anomaly on at least one seed" true (cd5 <> [])

let test_consistent_fd_closes_anomaly () =
  let reports = run_cascades ~channel_consistent_fd:true in
  List.iter
    (fun r ->
      if not (Checker.ok r) then
        Alcotest.failf "violation with channel-consistent FD: %s"
          (Format.asprintf "%a" Checker.pp_report r))
    reports

let test_notification_respects_flush_floor () =
  (* Direct substrate check: with a huge message latency and instant
     detection, the channel-consistent notification still arrives after
     the in-flight message. *)
  let module Engine = Cliffedge_sim.Engine in
  let module Network = Cliffedge_net.Network in
  let module Fd = Cliffedge_detector.Failure_detector in
  let engine = Engine.create () in
  let rng = Prng.create 3 in
  let network = Network.create ~engine ~rng ~latency:(Latency.Constant 100.0) () in
  let fd =
    Fd.create ~engine ~rng ~latency:(Latency.Constant 0.1)
      ~channel_floor:(fun ~observer ~crashed ->
        Network.flush_time network ~src:crashed ~dst:observer)
      ()
  in
  let events = ref [] in
  Network.on_deliver network (fun ~src:_ ~dst:_ payload ->
      events := (`Msg payload, Engine.now engine) :: !events);
  Fd.on_crash_notification fd (fun ~observer:_ ~crashed:_ ->
      events := (`Crash, Engine.now engine) :: !events);
  let a = Node_id.of_int 1 and b = Node_id.of_int 2 in
  Fd.monitor fd ~observer:b ~targets:(Node_set.singleton a);
  Network.send network ~src:a ~dst:b "in-flight";
  ignore
    (Engine.schedule engine ~delay:1.0 (fun () ->
         Network.crash network a;
         Fd.inject_crash fd a));
  Engine.run engine;
  match List.rev !events with
  | [ (`Msg "in-flight", t1); (`Crash, t2) ] ->
      Alcotest.(check bool) "message before notification" true (t1 < t2)
  | _ -> Alcotest.fail "expected message then crash notification"

let test_raw_notification_can_overtake () =
  (* Same setup without the floor: the notification overtakes. *)
  let module Engine = Cliffedge_sim.Engine in
  let module Network = Cliffedge_net.Network in
  let module Fd = Cliffedge_detector.Failure_detector in
  let engine = Engine.create () in
  let rng = Prng.create 3 in
  let network = Network.create ~engine ~rng ~latency:(Latency.Constant 100.0) () in
  let fd = Fd.create ~engine ~rng ~latency:(Latency.Constant 0.1) () in
  let order = ref [] in
  Network.on_deliver network (fun ~src:_ ~dst:_ _ -> order := `Msg :: !order);
  Fd.on_crash_notification fd (fun ~observer:_ ~crashed:_ -> order := `Crash :: !order);
  let a = Node_id.of_int 1 and b = Node_id.of_int 2 in
  Fd.monitor fd ~observer:b ~targets:(Node_set.singleton a);
  Network.send network ~src:a ~dst:b "in-flight";
  ignore
    (Engine.schedule engine ~delay:1.0 (fun () ->
         Network.crash network a;
         Fd.inject_crash fd a));
  Engine.run engine;
  Alcotest.(check bool) "notification first" true (List.rev !order = [ `Crash; `Msg ])

let suite =
  ( "fd anomaly (paper finding)",
    [
      Alcotest.test_case "raw FD reproduces CD5 anomaly" `Quick
        test_raw_fd_reproduces_anomaly;
      Alcotest.test_case "channel-consistent FD closes it" `Quick
        test_consistent_fd_closes_anomaly;
      Alcotest.test_case "flush floor ordering" `Quick
        test_notification_respects_flush_floor;
      Alcotest.test_case "raw FD can overtake" `Quick test_raw_notification_can_overtake;
    ] )

(* ------------------------------------------------------------------ *)
(* Assumption ablation (X13): false suspicions break the spec          *)

let test_false_suspicion_breaks_locality () =
  (* One false suspicion between correct nodes far from any real fault:
     the victim proposes a phantom region and its messages violate
     CD3. *)
  let graph = Topology.ring 32 in
  let region = Node_set.of_ints [ 10; 11 ] in
  let crashes = List.map (fun p -> (10.0, p)) (Node_set.elements region) in
  let options =
    {
      Runner.default_options with
      false_suspicions = [ (20.0, Node_id.of_int 0, Node_id.of_int 1) ];
    }
  in
  let outcome =
    Runner.run ~options ~graph ~crashes ~propose_value:Scenario.default_propose ()
  in
  let report = Checker.check ~value_equal:String.equal outcome in
  Alcotest.(check bool) "CD3 violated" true
    (List.exists
       (fun v -> v.Checker.property = Checker.CD3_locality)
       report.Checker.violations)

let test_suspicion_of_actually_crashed_is_noop () =
  (* Suspecting a node that really crashed adds nothing: run stays
     clean. *)
  let graph = Topology.ring 32 in
  let region = Node_set.of_ints [ 10; 11 ] in
  let crashes = List.map (fun p -> (10.0, p)) (Node_set.elements region) in
  let options =
    {
      Runner.default_options with
      false_suspicions = [ (50.0, Node_id.of_int 9, Node_id.of_int 10) ];
    }
  in
  let outcome =
    Runner.run ~options ~graph ~crashes ~propose_value:Scenario.default_propose ()
  in
  Alcotest.(check bool) "still clean" true
    (Checker.ok (Checker.check ~value_equal:String.equal outcome))

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "false suspicion breaks CD3" `Quick
          test_false_suspicion_breaks_locality;
        Alcotest.test_case "true suspicion is no-op" `Quick
          test_suspicion_of_actually_crashed_is_noop;
      ] )
