(* Tests for the scenario driver and the paper's figure scenarios. *)

open Cliffedge_graph
module Scenario = Cliffedge.Scenario
module Checker = Cliffedge.Checker
module Runner = Cliffedge.Runner
module P = Cliffedge.Paper_scenarios

let test_world_graph_shape () =
  let graph, names = P.fig1_world in
  Alcotest.(check int) "15 cities" 15 (Graph.node_count graph);
  Alcotest.(check bool) "connected" true (Graph.is_connected graph);
  Alcotest.(check (option string)) "paris named" (Some "paris")
    (Node_id.Names.find names (P.city "paris"));
  (* border(F1) per the paper *)
  let border = Graph.border graph P.f1 in
  let expected =
    Node_set.of_list [ P.city "paris"; P.city "london"; P.city "madrid"; P.city "roma" ]
  in
  Alcotest.(check bool) "border(F1)" true (Node_set.equal expected border);
  (* border(F3) gains berlin, loses paris *)
  let border3 = Graph.border graph P.f3 in
  let expected3 =
    Node_set.of_list [ P.city "berlin"; P.city "london"; P.city "madrid"; P.city "roma" ]
  in
  Alcotest.(check bool) "border(F3)" true (Node_set.equal expected3 border3)

let test_city_lookup () =
  Alcotest.(check int) "paris id" 0 (Node_id.to_int (P.city "paris"));
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (P.city "atlantis"))

let test_fig1a_two_agreements () =
  let outcome, report = Scenario.execute P.fig1a in
  Alcotest.(check bool) "ok" true (Checker.ok report);
  let views = Runner.decided_views outcome in
  Alcotest.(check int) "two regions agreed" 2 (List.length views);
  Alcotest.(check bool) "F1 agreed" true (List.exists (Node_set.equal P.f1) views);
  Alcotest.(check bool) "F2 agreed" true (List.exists (Node_set.equal P.f2) views)

let test_fig1a_locality () =
  let outcome, _ = Scenario.execute P.fig1a in
  let madrid = P.city "madrid" and vancouver = P.city "vancouver" in
  Alcotest.(check int) "no cross traffic" 0
    (Cliffedge_net.Stats.pair_count outcome.stats ~src:madrid ~dst:vancouver)

let test_fig1b_converges_on_f3 () =
  let outcome, report = Scenario.execute (P.fig1b ()) in
  Alcotest.(check bool) "ok" true (Checker.ok report);
  (* With the default timing paris dies mid-agreement: survivors decide
     F3, berlin among them. *)
  let views = Runner.decided_views outcome in
  Alcotest.(check bool) "F3 agreed" true (List.exists (Node_set.equal P.f3) views);
  Alcotest.(check bool) "berlin decided" true
    (Node_set.mem (P.city "berlin") (Runner.deciders outcome))

let test_fig1b_late_crash_is_separate_region () =
  (* If paris dies long after the F1 agreement completed, F1 is decided
     by its original border and {paris} becomes a separate story; all
     properties still hold. *)
  let outcome, report = Scenario.execute (P.fig1b ~paris_crash_time:500.0 ()) in
  Alcotest.(check bool) "ok" true (Checker.ok report);
  let views = Runner.decided_views outcome in
  Alcotest.(check bool) "F1 agreed before cascade" true
    (List.exists (Node_set.equal P.f1) views)

let test_fig2_progress_and_arbitration () =
  let outcome, report = Scenario.execute P.fig2 in
  Alcotest.(check bool) "ok" true (Checker.ok report);
  let deciders = Runner.deciders outcome in
  (* CD7: someone decides. *)
  Alcotest.(check bool) "progress" true (not (Node_set.is_empty deciders));
  (* The ranking makes the lexicographically-largest domain {10,11} win;
     its border is {9,12}. *)
  let winning = List.nth P.fig2_domains 3 in
  List.iter
    (fun (d : string Runner.decision) ->
      Alcotest.(check bool) "only the top domain is decided" true
        (Node_set.equal d.view winning))
    outcome.decisions

let test_all_scenarios_pass_many_seeds () =
  List.iter
    (fun scenario ->
      List.iter
        (fun seed ->
          let outcome, report = Scenario.execute (Scenario.with_seed scenario seed) in
          if not (Checker.ok report) then
            Alcotest.failf "scenario %s seed %d: %s (quiescent=%b)" scenario.Scenario.name
              seed
              (Format.asprintf "%a" Checker.pp_report report)
              outcome.Runner.quiescent)
        [ 0; 1; 2; 3; 4; 5; 6; 7 ])
    (P.all ())

let test_with_seed () =
  let s = Scenario.with_seed P.fig1a 42 in
  Alcotest.(check int) "seed set" 42 s.Scenario.options.Runner.seed

let test_pp_result_smoke () =
  let outcome, report = Scenario.execute P.fig1a in
  let s = Format.asprintf "%a" Scenario.pp_result (P.fig1a, outcome, report) in
  Alcotest.(check bool) "mentions madrid" true
    (let sub = "madrid" in
     let len = String.length sub in
     let rec scan i =
       if i + len > String.length s then false
       else if String.sub s i len = sub then true
       else scan (i + 1)
     in
     scan 0)

let suite =
  ( "paper scenarios",
    [
      Alcotest.test_case "world graph shape" `Quick test_world_graph_shape;
      Alcotest.test_case "city lookup" `Quick test_city_lookup;
      Alcotest.test_case "fig1a agreements" `Quick test_fig1a_two_agreements;
      Alcotest.test_case "fig1a locality" `Quick test_fig1a_locality;
      Alcotest.test_case "fig1b cascade" `Quick test_fig1b_converges_on_f3;
      Alcotest.test_case "fig1b late crash" `Quick test_fig1b_late_crash_is_separate_region;
      Alcotest.test_case "fig2 arbitration" `Quick test_fig2_progress_and_arbitration;
      Alcotest.test_case "all scenarios x seeds" `Slow test_all_scenarios_pass_many_seeds;
      Alcotest.test_case "with_seed" `Quick test_with_seed;
      Alcotest.test_case "pp_result" `Quick test_pp_result_smoke;
    ] )

(* execute_with: custom decision-value types flow through runner and
   checker. *)
let test_execute_with_custom_values () =
  let graph = Topology.ring 10 in
  let crashes = List.map (fun i -> (5.0, Node_id.of_int i)) [ 4; 5 ] in
  let scenario = Scenario.make ~name:"custom" ~graph ~crashes () in
  let outcome, report =
    Scenario.execute_with
      ~propose_value:(fun p view ->
        (Node_id.to_int p, Node_set.cardinal view) (* a tuple value *))
      ~value_equal:( = ) scenario
  in
  Alcotest.(check bool) "ok" true (Checker.ok report);
  List.iter
    (fun (d : (int * int) Runner.decision) ->
      (* default_pick: the smallest border node's tuple. *)
      Alcotest.(check (pair int int)) "agreed tuple" (3, 2) d.value)
    outcome.decisions

let test_default_propose_distinct_per_node () =
  let a = Scenario.default_propose (Node_id.of_int 1) (Node_set.of_ints [ 9 ]) in
  let b = Scenario.default_propose (Node_id.of_int 2) (Node_set.of_ints [ 9 ]) in
  Alcotest.(check bool) "distinct" false (String.equal a b)

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "execute_with custom values" `Quick
          test_execute_with_custom_values;
        Alcotest.test_case "default_propose distinct" `Quick
          test_default_propose_distinct_per_node;
      ] )
