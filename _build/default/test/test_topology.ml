(* Tests for the topology generators. *)

open Cliffedge_graph
module Prng = Cliffedge_prng.Prng

let rng () = Prng.create 12345

let check_shape name g ~nodes ~edges =
  Alcotest.(check int) (name ^ " nodes") nodes (Graph.node_count g);
  Alcotest.(check int) (name ^ " edges") edges (Graph.edge_count g);
  Alcotest.(check bool) (name ^ " connected") true (Graph.is_connected g)

let test_ring () =
  let g = Topology.ring 10 in
  check_shape "ring" g ~nodes:10 ~edges:10;
  Node_set.iter
    (fun p -> Alcotest.(check int) "degree 2" 2 (Graph.degree g p))
    (Graph.nodes g)

let test_path () =
  let g = Topology.path 10 in
  check_shape "path" g ~nodes:10 ~edges:9

let test_grid () =
  let g = Topology.grid 4 5 in
  check_shape "grid" g ~nodes:20 ~edges:(3 * 5 + 4 * 4)

let test_torus () =
  let g = Topology.torus 4 5 in
  check_shape "torus" g ~nodes:20 ~edges:40;
  Node_set.iter
    (fun p -> Alcotest.(check int) "degree 4" 4 (Graph.degree g p))
    (Graph.nodes g)

let test_complete () =
  let g = Topology.complete 8 in
  check_shape "complete" g ~nodes:8 ~edges:28

let test_star () =
  let g = Topology.star 9 in
  check_shape "star" g ~nodes:9 ~edges:8;
  Alcotest.(check int) "hub degree" 8 (Graph.degree g (Node_id.of_int 0))

let test_binary_tree () =
  let g = Topology.binary_tree 15 in
  check_shape "tree" g ~nodes:15 ~edges:14

let test_erdos_renyi () =
  let g = Topology.erdos_renyi (rng ()) 50 ~p:0.05 in
  Alcotest.(check int) "nodes" 50 (Graph.node_count g);
  Alcotest.(check bool) "connected (backbone)" true (Graph.is_connected g);
  Alcotest.(check bool) "has extra edges beyond backbone" true (Graph.edge_count g >= 49)

let test_erdos_renyi_deterministic () =
  let a = Topology.erdos_renyi (Prng.create 7) 30 ~p:0.1 in
  let b = Topology.erdos_renyi (Prng.create 7) 30 ~p:0.1 in
  Alcotest.(check bool) "same seed, same graph" true (Graph.edges a = Graph.edges b)

let test_watts_strogatz () =
  let g = Topology.watts_strogatz (rng ()) 40 ~k:4 ~beta:0.2 in
  Alcotest.(check int) "nodes" 40 (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_watts_strogatz_zero_beta () =
  let g = Topology.watts_strogatz (rng ()) 20 ~k:4 ~beta:0.0 in
  (* No rewiring: the pristine ring lattice, degree k everywhere. *)
  Node_set.iter
    (fun p -> Alcotest.(check int) "lattice degree" 4 (Graph.degree g p))
    (Graph.nodes g)

let test_barabasi_albert () =
  let g = Topology.barabasi_albert (rng ()) 60 ~m:2 in
  Alcotest.(check int) "nodes" 60 (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* Initial clique of 3 plus 57 nodes contributing 2 edges each. *)
  Alcotest.(check int) "edges" (3 + (57 * 2)) (Graph.edge_count g)

let test_random_geometric () =
  let g = Topology.random_geometric (rng ()) 40 ~radius:0.2 in
  Alcotest.(check int) "nodes" 40 (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_bad_arguments () =
  let invalid name f = Alcotest.check_raises name (Invalid_argument (Printf.sprintf "Topology.%s" name)) f in
  ignore invalid;
  (* Just assert they raise Invalid_argument, without matching messages. *)
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "ring 2" true (raises (fun () -> Topology.ring 2));
  Alcotest.(check bool) "path 1" true (raises (fun () -> Topology.path 1));
  Alcotest.(check bool) "torus 2x3" true (raises (fun () -> Topology.torus 2 3));
  Alcotest.(check bool) "ws odd k" true
    (raises (fun () -> Topology.watts_strogatz (rng ()) 10 ~k:3 ~beta:0.1));
  Alcotest.(check bool) "ba m too big" true
    (raises (fun () -> Topology.barabasi_albert (rng ()) 3 ~m:3));
  Alcotest.(check bool) "er bad p" true
    (raises (fun () -> Topology.erdos_renyi (rng ()) 10 ~p:1.5))

let test_spec_roundtrip () =
  let cases =
    [
      "ring:10";
      "path:5";
      "grid:3x4";
      "torus:5x5";
      "complete:6";
      "star:7";
      "tree:15";
      "er:20:0.1";
      "ws:20:4:0.1";
      "ba:20:2";
      "geo:20:0.3";
    ]
  in
  List.iter
    (fun s ->
      match Topology.spec_of_string s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok spec ->
          let printed = Format.asprintf "%a" Topology.pp_spec spec in
          Alcotest.(check string) "roundtrip" s printed;
          let g = Topology.build (rng ()) spec in
          Alcotest.(check bool) (s ^ " connected") true (Graph.is_connected g))
    cases

let test_spec_rejects_garbage () =
  List.iter
    (fun s ->
      match Topology.spec_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %s" s)
    [ ""; "ring"; "ring:x"; "grid:3"; "unknown:3"; "er:10"; "torus:3x" ]

let suite =
  ( "topology",
    [
      Alcotest.test_case "ring" `Quick test_ring;
      Alcotest.test_case "path" `Quick test_path;
      Alcotest.test_case "grid" `Quick test_grid;
      Alcotest.test_case "torus" `Quick test_torus;
      Alcotest.test_case "complete" `Quick test_complete;
      Alcotest.test_case "star" `Quick test_star;
      Alcotest.test_case "binary tree" `Quick test_binary_tree;
      Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
      Alcotest.test_case "erdos-renyi deterministic" `Quick test_erdos_renyi_deterministic;
      Alcotest.test_case "watts-strogatz" `Quick test_watts_strogatz;
      Alcotest.test_case "watts-strogatz beta=0" `Quick test_watts_strogatz_zero_beta;
      Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
      Alcotest.test_case "random geometric" `Quick test_random_geometric;
      Alcotest.test_case "bad arguments" `Quick test_bad_arguments;
      Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
      Alcotest.test_case "spec rejects garbage" `Quick test_spec_rejects_garbage;
    ] )
