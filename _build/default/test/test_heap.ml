(* Unit tests for the binary min-heap. *)

module Heap = Cliffedge_sim.Heap

let drain h =
  let rec loop acc = match Heap.pop h with None -> List.rev acc | Some x -> loop (x :: acc) in
  loop []

let test_empty () =
  let h = Heap.create ~compare:Int.compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_singleton () =
  let h = Heap.create ~compare:Int.compare in
  Heap.push h 42;
  Alcotest.(check (option int)) "peek" (Some 42) (Heap.peek h);
  Alcotest.(check int) "size" 1 (Heap.size h);
  Alcotest.(check (option int)) "pop" (Some 42) (Heap.pop h);
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_sorts () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  Alcotest.(check (list int)) "heap sort" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (drain h)

let test_duplicates () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 2; 1; 2; 1; 2 ];
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 2; 2; 2 ] (drain h)

let test_peek_does_not_remove () =
  let h = Heap.create ~compare:Int.compare in
  Heap.push h 3;
  Heap.push h 1;
  ignore (Heap.peek h);
  Alcotest.(check int) "size unchanged" 2 (Heap.size h)

let test_interleaved () =
  let h = Heap.create ~compare:Int.compare in
  Heap.push h 5;
  Heap.push h 1;
  Alcotest.(check (option int)) "min first" (Some 1) (Heap.pop h);
  Heap.push h 0;
  Heap.push h 9;
  Alcotest.(check (option int)) "new min" (Some 0) (Heap.pop h);
  Alcotest.(check (list int)) "rest" [ 5; 9 ] (drain h)

let test_custom_compare () =
  let h = Heap.create ~compare:(fun a b -> Int.compare b a) in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "max-heap via flipped compare" [ 3; 2; 1 ] (drain h)

let test_to_list_preserves () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 4; 2; 6 ];
  let l = List.sort compare (Heap.to_list h) in
  Alcotest.(check (list int)) "contents" [ 2; 4; 6 ] l;
  Alcotest.(check int) "still populated" 3 (Heap.size h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains in sorted order" ~count:200
    (QCheck2.Gen.list QCheck2.Gen.int) (fun xs ->
      let h = Heap.create ~compare:Int.compare in
      List.iter (Heap.push h) xs;
      drain h = List.sort Int.compare xs)

let suite =
  ( "heap",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "singleton" `Quick test_singleton;
      Alcotest.test_case "sorts" `Quick test_sorts;
      Alcotest.test_case "duplicates" `Quick test_duplicates;
      Alcotest.test_case "peek keeps" `Quick test_peek_does_not_remove;
      Alcotest.test_case "interleaved" `Quick test_interleaved;
      Alcotest.test_case "custom compare" `Quick test_custom_compare;
      Alcotest.test_case "to_list" `Quick test_to_list_preserves;
      QCheck_alcotest.to_alcotest prop_heap_sorts;
    ] )
