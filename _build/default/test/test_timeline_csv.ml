(* Tests for the timeline narrative and CSV export. *)

open Cliffedge_graph
module Timeline = Cliffedge.Timeline
module Runner = Cliffedge.Runner
module Scenario = Cliffedge.Scenario
module Csv = Cliffedge_report.Csv

let run_ring () =
  let graph = Topology.ring 10 in
  let region = Node_set.of_ints [ 3; 4 ] in
  let crashes = List.map (fun p -> (10.0, p)) (Node_set.elements region) in
  Runner.run ~graph ~crashes ~propose_value:Scenario.default_propose ()

let test_timeline_ordered_and_complete () =
  let outcome = run_ring () in
  let entries = Timeline.of_outcome ~value_to_string:Fun.id outcome in
  (* Time-ordered. *)
  let times = List.map (fun (e : Timeline.entry) -> e.time) entries in
  Alcotest.(check bool) "sorted" true (times = List.sort Float.compare times);
  (* Crashes, proposals and decisions all appear. *)
  let count p = List.length (List.filter p entries) in
  Alcotest.(check int) "crashes" 2
    (count (fun e -> e.Timeline.event = Timeline.Crashed));
  Alcotest.(check bool) "has proposals" true
    (count (fun e -> match e.Timeline.event with Timeline.Proposed _ -> true | _ -> false)
     > 0);
  Alcotest.(check int) "decisions" 2
    (count (fun e ->
         match e.Timeline.event with Timeline.Decided _ -> true | _ -> false))

let test_timeline_pp_mentions_nodes () =
  let outcome = run_ring () in
  let entries = Timeline.of_outcome ~value_to_string:Fun.id outcome in
  let s = Format.asprintf "%a" (Timeline.pp ?names:None) entries in
  Alcotest.(check bool) "mentions CRASH" true
    (let sub = "CRASHES" in
     let len = String.length sub in
     let rec scan i =
       if i + len > String.length s then false
       else if String.sub s i len = sub then true
       else scan (i + 1)
     in
     scan 0)

let test_decision_latency_positive () =
  let outcome = run_ring () in
  match Timeline.decision_latency outcome with
  | [ (view, latency) ] ->
      Alcotest.(check (list int)) "view" [ 3; 4 ] (Node_set.to_ints view);
      Alcotest.(check bool) "positive and plausible" true
        (latency > 0.0 && latency < 200.0)
  | other -> Alcotest.failf "expected one view, got %d" (List.length other)

let test_csv_render () =
  let csv = Csv.create ~columns:[ "a"; "b" ] in
  Csv.add_row csv [ "1"; "x" ];
  Csv.add_row csv [ "2"; "y" ];
  Alcotest.(check string) "render" "a,b\n1,x\n2,y\n" (Csv.render csv)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_row_width_checked () =
  let csv = Csv.create ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Csv.add_row: row width mismatches header") (fun () ->
      Csv.add_row csv [ "only" ])

let test_csv_write_file () =
  let csv = Csv.create ~columns:[ "n" ] in
  Csv.add_row csv [ "7" ];
  let path = Filename.temp_file "cliffedge" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_file csv path;
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "file content" "n\n7\n" content)

let suite =
  ( "timeline/csv",
    [
      Alcotest.test_case "timeline ordered" `Quick test_timeline_ordered_and_complete;
      Alcotest.test_case "timeline pp" `Quick test_timeline_pp_mentions_nodes;
      Alcotest.test_case "decision latency" `Quick test_decision_latency_positive;
      Alcotest.test_case "csv render" `Quick test_csv_render;
      Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
      Alcotest.test_case "csv row width" `Quick test_csv_row_width_checked;
      Alcotest.test_case "csv write file" `Quick test_csv_write_file;
    ] )

(* Table -> CSV bridge. *)
let test_table_to_csv () =
  let module Table = Cliffedge_report.Table in
  let t = Table.create ~title:"demo table" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "x,y" ];
  Alcotest.(check string) "csv" "a,b\n1,\"x,y\"\n" (Csv.render (Table.to_csv t));
  Alcotest.(check string) "title" "demo table" (Table.title t)

let test_table_slug () =
  let module Table = Cliffedge_report.Table in
  Alcotest.(check string) "slug" "x4-locality-claim-n-2"
    (Table.slug "X4 (locality claim): N^2!");
  Alcotest.(check string) "collapse" "a-b" (Table.slug "a   b")

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "table to csv" `Quick test_table_to_csv;
        Alcotest.test_case "table slug" `Quick test_table_slug;
      ] )
