(* Smoke tests for the pretty-printers: they must render non-trivially
   and never raise, whatever the value.  (Printers are the first thing a
   debugging user reaches for; a raising printer is worse than none.) *)

open Cliffedge_graph

let render pp v = Format.asprintf "%a" pp v

let nonempty name s = Alcotest.(check bool) name true (String.length s > 3)

let test_graph_printers () =
  let g = Topology.grid 3 3 in
  nonempty "Graph.pp" (render Graph.pp g);
  nonempty "Graph.pp_stats" (render Graph.pp_stats g);
  nonempty "Ranking.pp_rank" (render (Ranking.pp_rank g) (Node_set.of_ints [ 4 ]));
  nonempty "Fault_geometry.pp"
    (render Fault_geometry.pp (Fault_geometry.compute g ~faulty:(Node_set.of_ints [ 4 ])));
  nonempty "Topology.pp_spec" (render Topology.pp_spec (Topology.Grid (3, 3)))

let test_empty_graph_printers () =
  nonempty "empty graph" (render Graph.pp_stats Graph.empty);
  Alcotest.(check string) "empty set" "{}" (Node_set.to_string Node_set.empty)

let test_protocol_printers () =
  let module Protocol = Cliffedge.Protocol in
  let g = Topology.path 4 in
  let cfg =
    Protocol.config ~graph:g ~propose_value:(fun _ _ -> "v") ()
  in
  let st = Protocol.init ~self:(Node_id.of_int 1) in
  let st, _ = Protocol.handle cfg st Protocol.Init in
  let st, _ = Protocol.handle cfg st (Protocol.Crash (Node_id.of_int 2)) in
  nonempty "Protocol.pp_state" (render (Protocol.pp_state Format.pp_print_string) st);
  nonempty "fingerprint" (Protocol.fingerprint Fun.id st)

let test_runner_printers () =
  let module Runner = Cliffedge.Runner in
  let g = Topology.ring 8 in
  let outcome =
    Runner.run ~graph:g
      ~crashes:[ (5.0, Node_id.of_int 3) ]
      ~propose_value:Cliffedge.Scenario.default_propose ()
  in
  nonempty "Runner.pp_outcome"
    (render (Runner.pp_outcome Format.pp_print_string) outcome);
  nonempty "Checker.pp_report"
    (render Cliffedge.Checker.pp_report (Cliffedge.Checker.check outcome))

let test_mcheck_printer () =
  let module E = Cliffedge_mcheck.Explorer in
  let stats =
    E.explore ~graph:(Topology.path 3) ~crashes:[ Node_id.of_int 1 ] ()
  in
  nonempty "Explorer.pp_stats" (render E.pp_stats stats)

let suite =
  ( "printers",
    [
      Alcotest.test_case "graph family" `Quick test_graph_printers;
      Alcotest.test_case "degenerate values" `Quick test_empty_graph_printers;
      Alcotest.test_case "protocol" `Quick test_protocol_printers;
      Alcotest.test_case "runner/checker" `Quick test_runner_printers;
      Alcotest.test_case "model checker" `Quick test_mcheck_printer;
    ] )
