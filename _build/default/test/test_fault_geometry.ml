(* Tests for faulty domains, adjacency and clusters (§2.2). *)

open Cliffedge_graph

let set = Node_set.of_ints

(* The Fig. 2 shape: path 0..12 with domains {1,2} {4,5} {7,8} {10,11}. *)
let path13 = Topology.path 13

let fig2_faulty = set [ 1; 2; 4; 5; 7; 8; 10; 11 ]

let geometry = Fault_geometry.compute path13 ~faulty:fig2_faulty

let test_domains () =
  let domains = Fault_geometry.domains geometry in
  Alcotest.(check int) "four domains" 4 (List.length domains);
  Alcotest.(check bool) "first" true (Node_set.equal (set [ 1; 2 ]) (List.nth domains 0));
  Alcotest.(check bool) "last" true (Node_set.equal (set [ 10; 11 ]) (List.nth domains 3))

let test_domain_of () =
  (match Fault_geometry.domain_of geometry (Node_id.of_int 4) with
  | Some d -> Alcotest.(check bool) "domain of n4" true (Node_set.equal (set [ 4; 5 ]) d)
  | None -> Alcotest.fail "n4 should be in a domain");
  Alcotest.(check bool) "correct node has no domain" true
    (Fault_geometry.domain_of geometry (Node_id.of_int 3) = None)

let test_adjacency () =
  (* {1,2} and {4,5} share border node 3. *)
  Alcotest.(check bool) "adjacent" true
    (Fault_geometry.adjacent geometry (set [ 1; 2 ]) (set [ 4; 5 ]));
  Alcotest.(check bool) "not adjacent" false
    (Fault_geometry.adjacent geometry (set [ 1; 2 ]) (set [ 7; 8 ]))

let test_single_cluster () =
  Alcotest.(check int) "one cluster" 1 (List.length (Fault_geometry.clusters geometry));
  let borders = Fault_geometry.cluster_borders geometry in
  Alcotest.(check bool) "cluster border" true
    (Node_set.equal (set [ 0; 3; 6; 9; 12 ]) (List.hd borders))

let test_two_clusters () =
  (* Separate the chain: only {1,2} and {7,8} crash — distance keeps the
     clusters apart. *)
  let geom = Fault_geometry.compute path13 ~faulty:(set [ 1; 2; 7; 8 ]) in
  Alcotest.(check int) "two clusters" 2 (List.length (Fault_geometry.clusters geom))

let test_empty_faulty () =
  let geom = Fault_geometry.compute path13 ~faulty:Node_set.empty in
  Alcotest.(check int) "no domains" 0 (List.length (Fault_geometry.domains geom));
  Alcotest.(check int) "no clusters" 0 (List.length (Fault_geometry.clusters geom))

let test_envelopes () =
  let envelopes = Fault_geometry.communication_envelope geometry in
  Alcotest.(check int) "one per domain" 4 (List.length envelopes);
  Alcotest.(check bool) "first envelope" true
    (Node_set.equal (set [ 0; 1; 2; 3 ]) (List.hd envelopes))

let test_whole_graph_faulty_minus_one () =
  (* All but node 0 crash: one domain, one cluster, border {0}. *)
  let faulty = Node_set.remove (Node_id.of_int 0) (Graph.nodes path13) in
  let geom = Fault_geometry.compute path13 ~faulty in
  Alcotest.(check int) "one domain" 1 (List.length (Fault_geometry.domains geom));
  Alcotest.(check bool) "border is {0}" true
    (Node_set.equal (set [ 0 ]) (List.hd (Fault_geometry.cluster_borders geom)))

(* Clusters partition domains; every pair of domains in a cluster is
   transitively adjacent (spot-checked by reachability over adjacency). *)
let prop_clusters_partition =
  QCheck2.Test.make ~name:"clusters partition the domains" ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Cliffedge_prng.Prng.create seed in
      let g = Topology.torus 6 6 in
      let faulty =
        Node_set.random_subset rng (Graph.nodes g) ~keep_probability:0.3
      in
      let geom = Fault_geometry.compute g ~faulty in
      let domains = Fault_geometry.domains geom in
      let clustered = List.concat (Fault_geometry.clusters geom) in
      List.length clustered = List.length domains
      && List.for_all (fun d -> List.exists (Node_set.equal d) clustered) domains)

let suite =
  ( "fault geometry",
    [
      Alcotest.test_case "domains" `Quick test_domains;
      Alcotest.test_case "domain_of" `Quick test_domain_of;
      Alcotest.test_case "adjacency" `Quick test_adjacency;
      Alcotest.test_case "single cluster" `Quick test_single_cluster;
      Alcotest.test_case "two clusters" `Quick test_two_clusters;
      Alcotest.test_case "empty faulty set" `Quick test_empty_faulty;
      Alcotest.test_case "envelopes" `Quick test_envelopes;
      Alcotest.test_case "near-total failure" `Quick test_whole_graph_faulty_minus_one;
      QCheck_alcotest.to_alcotest prop_clusters_partition;
    ] )
