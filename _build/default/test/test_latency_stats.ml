(* Tests for latency models, message stats and DOT export. *)

open Cliffedge_graph
module Latency = Cliffedge_net.Latency
module Stats = Cliffedge_net.Stats
module Prng = Cliffedge_prng.Prng

let test_constant () =
  let rng = Prng.create 1 in
  Alcotest.(check (float 0.0)) "constant" 5.0 (Latency.sample (Latency.Constant 5.0) rng)

let test_uniform_bounds () =
  let rng = Prng.create 2 in
  let model = Latency.Uniform { min = 2.0; max = 4.0 } in
  for _ = 1 to 1000 do
    let d = Latency.sample model rng in
    if d < 2.0 || d > 4.0 then Alcotest.failf "out of bounds %f" d
  done

let test_exponential_min () =
  let rng = Prng.create 3 in
  let model = Latency.Exponential { min = 1.0; mean = 2.0 } in
  for _ = 1 to 1000 do
    let d = Latency.sample model rng in
    if d < 1.0 then Alcotest.failf "below min %f" d
  done

let test_negative_clamped () =
  let rng = Prng.create 4 in
  Alcotest.(check (float 0.0)) "clamped" 0.0 (Latency.sample (Latency.Constant (-3.0)) rng)

let test_latency_parse () =
  (match Latency.of_string "const:5" with
  | Ok (Latency.Constant 5.0) -> ()
  | _ -> Alcotest.fail "const:5");
  (match Latency.of_string "uniform:1:10" with
  | Ok (Latency.Uniform { min = 1.0; max = 10.0 }) -> ()
  | _ -> Alcotest.fail "uniform:1:10");
  (match Latency.of_string "exp:1:5" with
  | Ok (Latency.Exponential { min = 1.0; mean = 5.0 }) -> ()
  | _ -> Alcotest.fail "exp:1:5");
  (match Latency.of_string "uniform:10:1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inverted uniform should fail");
  match Latency.of_string "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage should fail"

let test_latency_pp_roundtrip () =
  List.iter
    (fun s ->
      match Latency.of_string s with
      | Ok m -> Alcotest.(check string) "roundtrip" s (Format.asprintf "%a" Latency.pp m)
      | Error e -> Alcotest.fail e)
    [ "const:5"; "uniform:1:10"; "exp:1:5" ]

let n = Node_id.of_int

let test_stats_counters () =
  let s = Stats.create () in
  Stats.record_send s ~src:(n 1) ~dst:(n 2) ~units:3;
  Stats.record_send s ~src:(n 1) ~dst:(n 2) ~units:2;
  Stats.record_send s ~src:(n 2) ~dst:(n 1) ~units:1;
  Stats.record_delivery s;
  Stats.record_delivery s;
  Stats.record_drop s;
  Alcotest.(check int) "sent" 3 (Stats.sent s);
  Alcotest.(check int) "units" 6 (Stats.units_sent s);
  Alcotest.(check int) "delivered" 2 (Stats.delivered s);
  Alcotest.(check int) "dropped" 1 (Stats.dropped s);
  Alcotest.(check int) "pair 1->2" 2 (Stats.pair_count s ~src:(n 1) ~dst:(n 2));
  Alcotest.(check int) "pair 2->1" 1 (Stats.pair_count s ~src:(n 2) ~dst:(n 1));
  Alcotest.(check int) "pair 1->3" 0 (Stats.pair_count s ~src:(n 1) ~dst:(n 3));
  Alcotest.(check int) "pairs" 2 (List.length (Stats.pairs s));
  Alcotest.(check (list int)) "communicating" [ 1; 2 ]
    (Node_set.to_ints (Stats.communicating_nodes s))

let test_dot_output () =
  let g = Graph.of_edges [ (0, 1); (1, 2) ] in
  let style =
    {
      Dot.crashed = Node_set.of_ints [ 1 ];
      border = Node_set.of_ints [ 0; 2 ];
      names = Node_id.Names.of_list [ (n 0, "alpha") ];
    }
  in
  let s = Dot.to_string ~style g in
  let mem sub = Alcotest.(check bool) sub true
    (let len = String.length sub in
     let rec scan i =
       if i + len > String.length s then false
       else if String.sub s i len = sub then true
       else scan (i + 1)
     in
     scan 0)
  in
  mem "graph cliffedge";
  mem "0 -- 1";
  mem "1 -- 2";
  mem "alpha";
  mem "indianred1";
  mem "orange"

let suite =
  ( "latency/stats/dot",
    [
      Alcotest.test_case "constant" `Quick test_constant;
      Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
      Alcotest.test_case "exponential min" `Quick test_exponential_min;
      Alcotest.test_case "negative clamped" `Quick test_negative_clamped;
      Alcotest.test_case "parse" `Quick test_latency_parse;
      Alcotest.test_case "pp roundtrip" `Quick test_latency_pp_roundtrip;
      Alcotest.test_case "stats counters" `Quick test_stats_counters;
      Alcotest.test_case "dot output" `Quick test_dot_output;
    ] )
