(* Tests for the group-membership comparison service. *)

open Cliffedge_graph
module Membership = Cliffedge_baseline.Membership
module Membership_runner = Cliffedge_baseline.Membership_runner

let set = Node_set.of_ints

let crash_all at region = List.map (fun p -> (at, p)) (Node_set.elements region)

let test_machine_initial_view () =
  let graph = Topology.ring 6 in
  let st = Membership.init ~graph ~self:(Node_id.of_int 0) in
  Alcotest.(check int) "initial view is everyone" 6
    (Node_set.cardinal (Membership.current_view st));
  Alcotest.(check int) "one install" 1 (Membership.installs st)

let test_machine_crash_installs () =
  let graph = Topology.ring 6 in
  let st = Membership.init ~graph ~self:(Node_id.of_int 0) in
  let st, actions = Membership.handle st (Membership.Crash (Node_id.of_int 3)) in
  Alcotest.(check int) "two installs" 2 (Membership.installs st);
  Alcotest.(check bool) "view shrank" true
    (not (Node_set.mem (Node_id.of_int 3) (Membership.current_view st)));
  let installs =
    List.filter (function Membership.Install _ -> true | _ -> false) actions
  in
  let gossips = List.filter (function Membership.Send _ -> true | _ -> false) actions in
  Alcotest.(check int) "one install action" 1 (List.length installs);
  Alcotest.(check int) "gossip to survivors" 4 (List.length gossips)

let test_machine_duplicate_view_no_install () =
  let graph = Topology.ring 6 in
  let st = Membership.init ~graph ~self:(Node_id.of_int 0) in
  let st, _ = Membership.handle st (Membership.Crash (Node_id.of_int 3)) in
  let view = Membership.current_view st in
  let st, actions =
    Membership.handle st (Membership.Deliver { src = Node_id.of_int 1; view })
  in
  Alcotest.(check int) "no new install" 2 (Membership.installs st);
  Alcotest.(check int) "no actions" 0 (List.length actions)

let test_machine_intersection () =
  let graph = Topology.ring 6 in
  let st = Membership.init ~graph ~self:(Node_id.of_int 0) in
  let smaller = Node_set.diff (Graph.nodes graph) (set [ 4; 5 ]) in
  let st, _ =
    Membership.handle st (Membership.Deliver { src = Node_id.of_int 1; view = smaller })
  in
  Alcotest.(check bool) "adopted intersection" true
    (Node_set.equal smaller (Membership.current_view st))

let test_runner_converges () =
  let graph = Topology.ring 12 in
  let outcome =
    Membership_runner.run ~graph ~crashes:(crash_all 5.0 (set [ 3; 4 ])) ()
  in
  Alcotest.(check bool) "quiescent" true outcome.quiescent;
  Alcotest.(check bool) "converged" true (Membership_runner.converged outcome);
  (* Every survivor installed at least one new view; churn is at least
     one install per survivor and typically more. *)
  Alcotest.(check bool) "churn counted" true
    (Membership_runner.total_installs outcome >= 10)

let test_runner_cascade_converges () =
  let graph = Topology.ring 12 in
  let crashes = crash_all 5.0 (set [ 3; 4 ]) @ [ (30.0, Node_id.of_int 5) ] in
  let outcome = Membership_runner.run ~graph ~crashes () in
  Alcotest.(check bool) "converged" true (Membership_runner.converged outcome);
  (* The cascade forces a second wave of installs. *)
  Alcotest.(check bool) "more churn" true
    (Membership_runner.total_installs outcome > 10)

let test_runner_no_crash_silent () =
  let outcome = Membership_runner.run ~graph:(Topology.ring 8) ~crashes:[] () in
  Alcotest.(check int) "no messages" 0 (Cliffedge_net.Stats.sent outcome.stats);
  Alcotest.(check int) "no churn" 0 (Membership_runner.total_installs outcome)

let test_runner_whole_system_involved () =
  let graph = Topology.ring 20 in
  let outcome =
    Membership_runner.run ~graph ~crashes:(crash_all 5.0 (set [ 7 ])) ()
  in
  (* Non-locality: every survivor participates. *)
  Alcotest.(check int) "everyone talks" 20
    (Node_set.cardinal (Cliffedge_net.Stats.communicating_nodes outcome.stats) + 1)

let suite =
  ( "membership",
    [
      Alcotest.test_case "initial view" `Quick test_machine_initial_view;
      Alcotest.test_case "crash installs" `Quick test_machine_crash_installs;
      Alcotest.test_case "duplicate view" `Quick test_machine_duplicate_view_no_install;
      Alcotest.test_case "intersection" `Quick test_machine_intersection;
      Alcotest.test_case "runner converges" `Quick test_runner_converges;
      Alcotest.test_case "runner cascade" `Quick test_runner_cascade_converges;
      Alcotest.test_case "runner silent" `Quick test_runner_no_crash_silent;
      Alcotest.test_case "whole system involved" `Quick
        test_runner_whole_system_involved;
    ] )
