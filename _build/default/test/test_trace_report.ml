(* Tests for the trace recorder and the report library. *)

module Trace = Cliffedge_sim.Trace
module Summary = Cliffedge_report.Summary
module Table = Cliffedge_report.Table

let test_trace_roundtrip () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 "a";
  Trace.record t ~time:2.0 "b";
  Alcotest.(check int) "length" 2 (Trace.length t);
  Alcotest.(check (list string)) "events" [ "a"; "b" ] (Trace.events t);
  let entries = Trace.to_list t in
  Alcotest.(check (float 0.0)) "first time" 1.0 (List.hd entries).Trace.time

let test_trace_filter_map () =
  let t = Trace.create () in
  List.iter (fun (time, e) -> Trace.record t ~time e) [ (1.0, 1); (2.0, 2); (3.0, 3) ];
  let odd = Trace.filter_map (fun e -> if e.Trace.event mod 2 = 1 then Some e.Trace.event else None) t in
  Alcotest.(check (list int)) "filtered" [ 1; 3 ] odd

let test_summary_singleton () =
  let s = Summary.of_list [ 5.0 ] in
  Alcotest.(check (float 0.0)) "mean" 5.0 s.Summary.mean;
  Alcotest.(check (float 0.0)) "stddev" 0.0 s.Summary.stddev;
  Alcotest.(check (float 0.0)) "median" 5.0 s.Summary.median

let test_summary_known_values () =
  let s = Summary.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Summary.mean;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Summary.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.Summary.max;
  Alcotest.(check int) "count" 8 s.Summary.count;
  (* sample stddev of this classic set is ~2.138 *)
  Alcotest.(check bool) "stddev" true (abs_float (s.Summary.stddev -. 2.138) < 0.01)

let test_summary_percentiles () =
  let s = Summary.of_list (List.init 100 (fun i -> float_of_int (i + 1))) in
  Alcotest.(check (float 0.0)) "median" 50.0 s.Summary.median;
  Alcotest.(check (float 0.0)) "p90" 90.0 s.Summary.p90

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_list: empty sample")
    (fun () -> ignore (Summary.of_list []))

let test_summary_of_ints () =
  let s = Summary.of_ints [ 1; 2; 3 ] in
  Alcotest.(check (float 1e-9)) "mean" 2.0 s.Summary.mean

let test_table_renders () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "long column" ] in
  Table.add_row t [ "1"; "x" ];
  Table.add_rows t [ [ "2"; "y" ]; [ "3"; "zzzz" ] ];
  let s = Table.render t in
  let mem sub =
    let len = String.length sub in
    let rec scan i =
      if i + len > String.length s then false
      else if String.sub s i len = sub then true
      else scan (i + 1)
    in
    Alcotest.(check bool) sub true (scan 0)
  in
  mem "== demo ==";
  mem "| a ";
  mem "| long column ";
  mem "| zzzz";
  (* All lines of the body share the same width. *)
  let widths =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '=')
    |> List.map String.length
  in
  Alcotest.(check int) "uniform line width" 1 (List.length (List.sort_uniq compare widths))

let test_table_row_mismatch () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Table.add_row: row width mismatches columns") (fun () ->
      Table.add_row t [ "only one" ])

let suite =
  ( "trace/report",
    [
      Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
      Alcotest.test_case "trace filter_map" `Quick test_trace_filter_map;
      Alcotest.test_case "summary singleton" `Quick test_summary_singleton;
      Alcotest.test_case "summary known values" `Quick test_summary_known_values;
      Alcotest.test_case "summary percentiles" `Quick test_summary_percentiles;
      Alcotest.test_case "summary empty" `Quick test_summary_empty;
      Alcotest.test_case "summary of ints" `Quick test_summary_of_ints;
      Alcotest.test_case "table renders" `Quick test_table_renders;
      Alcotest.test_case "table row mismatch" `Quick test_table_row_mismatch;
    ] )
