(* Adversarial state-walk properties on the pure protocol machine.

   A single node is fed long random—but well-formed—event sequences
   (growing crash notifications, round-1 proposals and rejections from
   peers, outcome broadcasts) and its internal invariants are checked
   after every transition.  This complements the end-to-end runs: here
   the environment does not follow the protocol, only the model's
   well-formedness rules, so the machine's own monotonicity and
   stability guarantees carry all the weight. *)

open Cliffedge_graph
module Protocol = Cliffedge.Protocol
module Message = Cliffedge.Message
module Opinion = Cliffedge.Opinion
module Prng = Cliffedge_prng.Prng

let graph = Topology.torus 6 6

let cfg ~early_stopping =
  Protocol.config ~early_stopping ~graph
    ~propose_value:(fun p v ->
      Format.asprintf "%a/%d" Node_id.pp p (Node_set.cardinal v))
    ()

let self = Node_id.of_int 14

(* A random region bordered by [self], built by growing from one of its
   neighbours while never absorbing [self]. *)
let random_bordered_region rng =
  let start = Node_set.random_element rng (Graph.neighbours graph self) in
  let rec grow region k =
    if k = 0 then region
    else
      let border = Node_set.remove self (Graph.border graph region) in
      if Node_set.is_empty border then region
      else grow (Node_set.add (Node_set.random_element rng border) region) (k - 1)
  in
  grow (Node_set.singleton start) (Prng.int rng 4)

let random_event rng st =
  match Prng.int rng 4 with
  | 0 ->
      (* A new crash adjacent to what the node already knows (or a fresh
         neighbour), keeping view construction realistic. *)
      let crashed = Protocol.locally_crashed st in
      let frontier =
        if Node_set.is_empty crashed then Graph.neighbours graph self
        else Node_set.remove self (Graph.border graph crashed)
      in
      if Node_set.is_empty frontier then None
      else Some (Protocol.Crash (Node_set.random_element rng frontier))
  | 1 ->
      (* Round-1 accept from a peer border node of a random view. *)
      let view = random_bordered_region rng in
      let border = Graph.border graph view in
      let peers = Node_set.remove self border in
      if Node_set.is_empty peers then None
      else
        let src = Node_set.random_element rng peers in
        Some
          (Protocol.Deliver
             {
               src;
               msg =
                 Message.Round
                   {
                     round = 1;
                     view;
                     border;
                     opinions = Opinion.Vector.singleton src (Opinion.Accept "peer");
                   };
             })
  | 2 ->
      (* Rejection from a peer. *)
      let view = random_bordered_region rng in
      let border = Graph.border graph view in
      let peers = Node_set.remove self border in
      if Node_set.is_empty peers then None
      else
        let src = Node_set.random_element rng peers in
        Some
          (Protocol.Deliver
             {
               src;
               msg =
                 Message.Round
                   {
                     round = 1;
                     view;
                     border;
                     opinions = Opinion.Vector.singleton src Opinion.Reject;
                   };
             })
  | _ ->
      (* Failed-outcome broadcast (the early-termination extension). *)
      let view = random_bordered_region rng in
      let border = Graph.border graph view in
      let peers = Node_set.remove self border in
      if Node_set.is_empty peers then None
      else
        let src = Node_set.random_element rng peers in
        Some
          (Protocol.Deliver
             {
               src;
               msg =
                 Message.Outcome
                   {
                     view;
                     border;
                     opinions = Opinion.Vector.singleton src Opinion.Reject;
                   };
             })

type snapshot = {
  crashed : Node_set.t;
  max_view : Cliffedge.View.t;
  decided : (Cliffedge.View.t * string) option;
  rejected : Cliffedge.View.t list;
  proposals : Cliffedge.View.t list;  (* reversed *)
}

let snapshot st proposals =
  {
    crashed = Protocol.locally_crashed st;
    max_view = Protocol.max_view st;
    decided = Protocol.decided st;
    rejected = Protocol.rejected_views st;
    proposals;
  }

let check_step before after =
  if not (Node_set.subset before.crashed after.crashed) then
    QCheck2.Test.fail_report "locallyCrashed not monotone";
  if Ranking.lower graph after.max_view before.max_view then
    QCheck2.Test.fail_report "maxView rank decreased";
  (match (before.decided, after.decided) with
  | Some (v, d), Some (v', d') when Node_set.equal v v' && String.equal d d' -> ()
  | Some _, Some _ -> QCheck2.Test.fail_report "decision changed"
  | Some _, None -> QCheck2.Test.fail_report "decision forgotten"
  | None, _ -> ());
  if
    not
      (List.for_all
         (fun r -> List.exists (Node_set.equal r) after.rejected)
         before.rejected)
  then QCheck2.Test.fail_report "rejected set shrank";
  (* Proposals strictly increase in rank (Lemma 2). *)
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> Ranking.lower graph b a && strictly_increasing rest
    | _ -> true
  in
  (* [proposals] is reversed: newest first. *)
  if not (strictly_increasing after.proposals) then
    QCheck2.Test.fail_report "proposals not strictly increasing in rank"

let walk ~early_stopping seed =
  let rng = Prng.create seed in
  let c = cfg ~early_stopping in
  let st = Protocol.init ~self in
  let st, _ = Protocol.handle c st Protocol.Init in
  let proposals = ref [] in
  let state = ref st in
  for _ = 1 to 60 do
    match random_event rng !state with
    | None -> ()
    | Some event ->
        let before = snapshot !state !proposals in
        let st, actions = Protocol.handle c !state event in
        List.iter
          (function
            | Protocol.Note (Protocol.Proposed v) -> proposals := v :: !proposals
            | Protocol.Send { dst; _ } ->
                if Node_id.equal dst self then
                  QCheck2.Test.fail_report "machine sent a message to itself"
            | _ -> ())
          actions;
        state := st;
        check_step before (snapshot st !proposals)
  done;
  (* Fingerprints are deterministic and total. *)
  let fp1 = Protocol.fingerprint Fun.id !state in
  let fp2 = Protocol.fingerprint Fun.id !state in
  String.equal fp1 fp2

let prop_invariants =
  QCheck2.Test.make ~name:"protocol invariants under adversarial event walks"
    ~count:200
    QCheck2.Gen.(int_range 0 1_000_000)
    (walk ~early_stopping:false)

let prop_invariants_early =
  QCheck2.Test.make
    ~name:"protocol invariants under adversarial walks (early stopping)" ~count:200
    QCheck2.Gen.(int_range 0 1_000_000)
    (walk ~early_stopping:true)

(* Distinct states almost surely have distinct fingerprints; identical
   replays have identical ones. *)
let prop_fingerprint_replay =
  QCheck2.Test.make ~name:"fingerprints identify replayed states" ~count:50
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let run () =
        let rng = Prng.create seed in
        let c = cfg ~early_stopping:false in
        let st = ref (fst (Protocol.handle c (Protocol.init ~self) Protocol.Init)) in
        for _ = 1 to 30 do
          match random_event rng !st with
          | None -> ()
          | Some e -> st := fst (Protocol.handle c !st e)
        done;
        Protocol.fingerprint Fun.id !st
      in
      String.equal (run ()) (run ()))

let suite =
  ( "protocol invariants",
    [
      QCheck_alcotest.to_alcotest prop_invariants;
      QCheck_alcotest.to_alcotest prop_invariants_early;
      QCheck_alcotest.to_alcotest prop_fingerprint_replay;
    ] )
