(* Tests for the fault-pattern generators. *)

open Cliffedge_graph
module Fault_gen = Cliffedge_workload.Fault_gen
module Prng = Cliffedge_prng.Prng

let rng () = Prng.create 4242

let torus = Topology.torus 8 8

let test_connected_region_properties () =
  for seed = 0 to 20 do
    let rng = Prng.create seed in
    let size = 1 + Prng.int rng 10 in
    let region = Fault_gen.connected_region rng torus ~size in
    Alcotest.(check int) "size" size (Node_set.cardinal region);
    Alcotest.(check bool) "connected" true (Graph.is_region torus region)
  done

let test_connected_region_from_seed_node () =
  let seed_node = Node_id.of_int 12 in
  let region = Fault_gen.connected_region_from (rng ()) torus ~seed_node ~size:5 in
  Alcotest.(check bool) "contains seed" true (Node_set.mem seed_node region);
  Alcotest.(check bool) "connected" true (Graph.is_region torus region)

let test_size_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero" true
    (raises (fun () -> Fault_gen.connected_region (rng ()) torus ~size:0));
  Alcotest.(check bool) "all nodes" true
    (raises (fun () -> Fault_gen.connected_region (rng ()) torus ~size:64))

let test_isolated_regions () =
  match Fault_gen.isolated_regions (rng ()) torus ~count:3 ~size:2 with
  | None -> Alcotest.fail "placement should succeed on an 8x8 torus"
  | Some regions ->
      Alcotest.(check int) "three regions" 3 (List.length regions);
      List.iter
        (fun r ->
          Alcotest.(check bool) "connected" true (Graph.is_region torus r);
          List.iter
            (fun r' ->
              if not (Node_set.equal r r') then
                Alcotest.(check bool) "envelopes disjoint" true
                  (Node_set.is_empty
                     (Node_set.inter
                        (Graph.closed_neighbourhood torus r)
                        r')))
            regions)
        regions

let test_isolated_regions_impossible () =
  (* Can't place 10 disjoint 3-node envelopes in a 9-node ring. *)
  let small = Topology.ring 9 in
  Alcotest.(check bool) "refuses" true
    (Fault_gen.isolated_regions (rng ()) small ~count:10 ~size:3 = None)

let test_adjacent_chain () =
  match Fault_gen.adjacent_chain (rng ()) torus ~domains:3 ~size:2 with
  | None -> Alcotest.fail "chain placement should succeed"
  | Some domains ->
      Alcotest.(check int) "three domains" 3 (List.length domains);
      (* Consecutive domains adjacent, all disconnected from each other. *)
      let rec check = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "adjacent" true
              (not
                 (Node_set.is_empty
                    (Node_set.inter (Graph.border torus a) (Graph.border torus b))));
            Alcotest.(check bool) "not merged" true
              (Node_set.is_empty (Node_set.inter (Graph.border torus a) b));
            check rest
        | _ -> ()
      in
      check domains;
      (* They form ONE faulty cluster. *)
      let faulty = List.fold_left Node_set.union Node_set.empty domains in
      let geom = Fault_geometry.compute torus ~faulty in
      Alcotest.(check int) "domains preserved" 3
        (List.length (Fault_geometry.domains geom));
      Alcotest.(check int) "single cluster" 1 (List.length (Fault_geometry.clusters geom))

let test_crash_at () =
  let region = Node_set.of_ints [ 1; 2 ] in
  Alcotest.(check int) "schedule size" 2 (List.length (Fault_gen.crash_at 3.0 region));
  List.iter
    (fun (t, _) -> Alcotest.(check (float 0.0)) "time" 3.0 t)
    (Fault_gen.crash_at 3.0 region)

let test_staggered_window () =
  let region = Node_set.of_ints [ 1; 2; 3; 4 ] in
  let schedule = Fault_gen.staggered (rng ()) ~start:10.0 ~spread:5.0 region in
  Alcotest.(check int) "all nodes" 4 (List.length schedule);
  List.iter
    (fun (t, _) ->
      Alcotest.(check bool) "within window" true (t >= 10.0 && t <= 15.0))
    schedule;
  (* Sorted by time. *)
  let times = List.map fst schedule in
  Alcotest.(check bool) "sorted" true (times = List.sort Float.compare times)

let test_cascade () =
  let seed_region = Node_set.of_ints [ 0 ] in
  let schedule, final =
    Fault_gen.cascade (rng ()) torus ~seed_region ~depth:5 ~start:10.0 ~interval:20.0
  in
  Alcotest.(check int) "six crashes" 6 (List.length schedule);
  Alcotest.(check int) "final region size" 6 (Node_set.cardinal final);
  Alcotest.(check bool) "final region connected" true (Graph.is_region torus final);
  (* Times strictly increase past the seed. *)
  let times = List.map fst schedule in
  Alcotest.(check bool) "ordered" true (times = List.sort Float.compare times);
  (* The schedule covers exactly the final region. *)
  let covered =
    List.fold_left (fun acc (_, p) -> Node_set.add p acc) Node_set.empty schedule
  in
  Alcotest.(check bool) "coverage" true (Node_set.equal covered final)

let test_cascade_stops_at_graph_edge () =
  let small = Topology.ring 5 in
  let schedule, final =
    Fault_gen.cascade (rng ()) small
      ~seed_region:(Node_set.of_ints [ 0 ])
      ~depth:50 ~start:0.0 ~interval:1.0
  in
  (* Keeps at least two correct nodes. *)
  Alcotest.(check bool) "bounded" true (Node_set.cardinal final <= 3);
  Alcotest.(check bool) "schedule matches" true
    (List.length schedule = Node_set.cardinal final)

let suite =
  ( "fault gen",
    [
      Alcotest.test_case "connected region" `Quick test_connected_region_properties;
      Alcotest.test_case "region from seed" `Quick test_connected_region_from_seed_node;
      Alcotest.test_case "size validation" `Quick test_size_validation;
      Alcotest.test_case "isolated regions" `Quick test_isolated_regions;
      Alcotest.test_case "isolated impossible" `Quick test_isolated_regions_impossible;
      Alcotest.test_case "adjacent chain" `Quick test_adjacent_chain;
      Alcotest.test_case "crash_at" `Quick test_crash_at;
      Alcotest.test_case "staggered" `Quick test_staggered_window;
      Alcotest.test_case "cascade" `Quick test_cascade;
      Alcotest.test_case "cascade bounded" `Quick test_cascade_stops_at_graph_edge;
    ] )
