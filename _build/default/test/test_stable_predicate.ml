(* Tests for the stable-predicate generalization (§5). *)

open Cliffedge_graph
module Sp = Cliffedge.Stable_predicate

let set = Node_set.of_ints

let flags_at at region = List.map (fun p -> (at, p)) (Node_set.elements region)

let test_detects_flagged_region () =
  let graph = Topology.grid 5 5 in
  let hot = set [ 11; 12 ] in
  let outcome = Sp.detect ~graph ~flags:(flags_at 10.0 hot) () in
  Alcotest.(check bool) "ok" true (Sp.ok outcome);
  match outcome.regions with
  | [ r ] ->
      Alcotest.(check bool) "region" true (Node_set.equal hot r.region);
      Alcotest.(check bool) "deciders are the healthy border" true
        (Node_set.equal (Graph.border graph hot) r.deciders)
  | rs -> Alcotest.failf "expected one region, got %d" (List.length rs)

let test_custom_mitigation_value () =
  let graph = Topology.ring 8 in
  let hot = set [ 3 ] in
  let outcome =
    Sp.detect
      ~propose_mitigation:(fun _ v ->
        Printf.sprintf "throttle-%d" (Node_set.cardinal v))
      ~graph ~flags:(flags_at 5.0 hot) ()
  in
  Alcotest.(check bool) "ok" true (Sp.ok outcome);
  match outcome.regions with
  | [ r ] -> Alcotest.(check string) "value" "throttle-1" r.value
  | _ -> Alcotest.fail "expected one region"

let test_gradual_spread_converges () =
  (* The hot spot spreads node by node: stale small-region agreements
     must converge on the final extent (same dynamics as Fig. 1(b)). *)
  let graph = Topology.grid 6 6 in
  let spread = [ (10.0, 14); (40.0, 15); (70.0, 21) ] in
  let flags = List.map (fun (t, i) -> (t, Node_id.of_int i)) spread in
  let outcome = Sp.detect ~graph ~flags () in
  Alcotest.(check bool) "ok" true (Sp.ok outcome);
  (* Whatever the race outcomes, regions never overlap (CD6) and the
     final region agreed contains the last flagged node or the run ended
     with earlier complete agreements. *)
  List.iter
    (fun (r : Sp.flagged_region) ->
      Alcotest.(check bool) "region valid" true (Graph.is_region graph r.region))
    outcome.regions

let test_no_flags () =
  let outcome = Sp.detect ~graph:(Topology.ring 6) ~flags:[] () in
  Alcotest.(check bool) "ok" true (Sp.ok outcome);
  Alcotest.(check int) "no regions" 0 (List.length outcome.regions)

let test_pp_smoke () =
  let graph = Topology.ring 8 in
  let outcome = Sp.detect ~graph ~flags:(flags_at 5.0 (set [ 3 ])) () in
  let s = Format.asprintf "%a" Sp.pp outcome in
  Alcotest.(check bool) "non-trivial output" true (String.length s > 20)

let suite =
  ( "stable predicate",
    [
      Alcotest.test_case "detects flagged region" `Quick test_detects_flagged_region;
      Alcotest.test_case "custom mitigation" `Quick test_custom_mitigation_value;
      Alcotest.test_case "gradual spread" `Quick test_gradual_spread_converges;
      Alcotest.test_case "no flags" `Quick test_no_flags;
      Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
    ] )
