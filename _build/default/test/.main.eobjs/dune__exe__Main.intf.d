test/main.mli:
