test/test_repair.ml: Alcotest Cliffedge Cliffedge_graph Cliffedge_prng Cliffedge_repair Format Graph List Node_id Node_set String Topology
