test/test_fault_gen.ml: Alcotest Cliffedge_graph Cliffedge_prng Cliffedge_workload Fault_geometry Float Graph List Node_id Node_set Topology
