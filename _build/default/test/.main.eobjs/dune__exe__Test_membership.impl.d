test/test_membership.ml: Alcotest Cliffedge_baseline Cliffedge_graph Cliffedge_net Graph List Node_id Node_set Topology
