test/test_timeline_csv.ml: Alcotest Cliffedge Cliffedge_graph Cliffedge_report Filename Float Format Fun List Node_set String Sys Topology
