test/test_heap.ml: Alcotest Cliffedge_sim Int List QCheck2 QCheck_alcotest
