test/test_printers.ml: Alcotest Cliffedge Cliffedge_graph Cliffedge_mcheck Fault_geometry Format Fun Graph Node_id Node_set Ranking String Topology
