test/test_prng.ml: Alcotest Array Cliffedge_prng Fun List
