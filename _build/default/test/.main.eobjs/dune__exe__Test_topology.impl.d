test/test_topology.ml: Alcotest Cliffedge_graph Cliffedge_prng Format Graph List Node_id Node_set Printf Topology
