test/test_runner.ml: Alcotest Cliffedge Cliffedge_graph Cliffedge_net Float List Node_id Node_set Topology
