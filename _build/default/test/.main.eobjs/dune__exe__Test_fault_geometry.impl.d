test/test_fault_geometry.ml: Alcotest Cliffedge_graph Cliffedge_prng Fault_geometry Graph List Node_id Node_set QCheck2 QCheck_alcotest Topology
