test/test_stable_predicate.ml: Alcotest Cliffedge Cliffedge_graph Format Graph List Node_id Node_set Printf String Topology
