test/test_opinion.ml: Alcotest Cliffedge Cliffedge_graph Format Node_id Node_map Node_set String
