test/test_trace_report.ml: Alcotest Cliffedge_report Cliffedge_sim List String
