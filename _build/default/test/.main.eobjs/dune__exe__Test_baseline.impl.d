test/test_baseline.ml: Alcotest Cliffedge_baseline Cliffedge_graph Cliffedge_net List Node_id Node_map Node_set Topology
