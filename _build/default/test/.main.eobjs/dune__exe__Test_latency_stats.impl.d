test/test_latency_stats.ml: Alcotest Cliffedge_graph Cliffedge_net Cliffedge_prng Dot Format Graph List Node_id Node_set String
