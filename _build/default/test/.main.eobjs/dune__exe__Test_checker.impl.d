test/test_checker.ml: Alcotest Cliffedge Cliffedge_graph Cliffedge_net List Node_id Node_set String Topology
