test/test_scenarios.ml: Alcotest Cliffedge Cliffedge_graph Cliffedge_net Format Graph List Node_id Node_set String Topology
