test/test_engine.ml: Alcotest Cliffedge_sim List
