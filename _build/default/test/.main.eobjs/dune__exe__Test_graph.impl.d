test/test_graph.ml: Alcotest Cliffedge_graph Cliffedge_prng Cliffedge_workload Graph List Node_id Node_map Node_set QCheck2 QCheck_alcotest Topology
