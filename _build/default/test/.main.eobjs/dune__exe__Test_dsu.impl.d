test/test_dsu.ml: Alcotest Cliffedge_graph Cliffedge_prng Graph List Node_id Node_set QCheck2 QCheck_alcotest Topology
