test/test_protocol_invariants.ml: Cliffedge Cliffedge_graph Cliffedge_prng Format Fun Graph List Node_id Node_set QCheck2 QCheck_alcotest Ranking String Topology
