test/test_protocol.ml: Alcotest Cliffedge Cliffedge_graph Format Fun Hashtbl List Node_id Node_map Node_set Option Queue Topology
