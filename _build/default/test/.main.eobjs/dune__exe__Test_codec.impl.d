test/test_codec.ml: Alcotest Bytes Char Cliffedge Cliffedge_codec Cliffedge_graph List Node_id Node_map Node_set Option Printf QCheck2 QCheck_alcotest String
