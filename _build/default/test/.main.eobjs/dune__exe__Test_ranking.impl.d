test/test_ranking.ml: Alcotest Cliffedge_graph Cliffedge_prng Cliffedge_workload Graph Node_set QCheck2 QCheck_alcotest Ranking Topology
