test/test_mcheck.ml: Alcotest Cliffedge Cliffedge_graph Cliffedge_mcheck List Node_id Topology
