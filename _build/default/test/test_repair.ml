(* Tests for repair plans, planners and end-to-end repair sessions. *)

open Cliffedge_graph
module Plan = Cliffedge_repair.Plan
module Planner = Cliffedge_repair.Planner
module Session = Cliffedge_repair.Session

let n = Node_id.of_int

let set = Node_set.of_ints

let crash_all at region = List.map (fun p -> (at, p)) (Node_set.elements region)

let test_make_normalizes () =
  let plan = Plan.make [ (n 3, n 1); (n 1, n 3); (n 2, n 2); (n 1, n 2) ] in
  Alcotest.(check int) "dedup + self-loop dropped" 2 (Plan.edge_count plan);
  Alcotest.(check bool) "oriented" true
    (List.for_all (fun (a, b) -> Node_id.compare a b < 0) plan.Plan.edges)

let test_equal_union () =
  let a = Plan.make [ (n 1, n 2) ] and b = Plan.make [ (n 2, n 1) ] in
  Alcotest.(check bool) "orientation-insensitive equality" true (Plan.equal a b);
  let u = Plan.union a (Plan.make [ (n 3, n 4) ]) in
  Alcotest.(check int) "union" 2 (Plan.edge_count u)

let test_apply () =
  let g = Topology.path 4 in
  let healed = Plan.apply g (Plan.make [ (n 0, n 3) ]) in
  Alcotest.(check bool) "edge added" true (Graph.mem_edge (n 0) (n 3) healed)

let test_touches_only () =
  let plan = Plan.make [ (n 1, n 2) ] in
  Alcotest.(check bool) "inside" true (Plan.touches_only plan (set [ 1; 2; 3 ]));
  Alcotest.(check bool) "outside" false (Plan.touches_only plan (set [ 1; 3 ]))

let test_heals_detects_disconnection () =
  (* A single segment cut leaves a cycle connected; two separate cuts
     disconnect it. *)
  let g = Topology.ring 6 in
  Alcotest.(check bool) "one segment, still connected" true
    (Plan.heals g ~crashed:(set [ 2; 3 ]) []);
  let crashed = set [ 2; 5 ] in
  Alcotest.(check bool) "two cuts, disconnected" false (Plan.heals g ~crashed []);
  Alcotest.(check bool) "splices heal" true
    (Plan.heals g ~crashed [ Plan.make [ (n 1, n 3) ]; Plan.make [ (n 4, n 0) ] ]);
  (* A plan touching a crashed endpoint is invalid. *)
  Alcotest.(check bool) "crashed endpoint rejected" false
    (Plan.heals g ~crashed [ Plan.make [ (n 1, n 2) ]; Plan.make [ (n 4, n 0) ] ])

let test_heals_trivial_cases () =
  let g = Topology.path 2 in
  Alcotest.(check bool) "one survivor" true
    (Plan.heals g ~crashed:(set [ 1 ]) [])

let test_ring_splice_planner () =
  let g = Topology.ring 10 in
  let view = set [ 4; 5 ] in
  let plan = Planner.plan Planner.Ring_splice g view in
  Alcotest.(check int) "one edge" 1 (Plan.edge_count plan);
  Alcotest.(check bool) "endpoints are the border" true
    (Plan.touches_only plan (Graph.border g view))

let test_chain_planner_on_big_border () =
  let g = Topology.grid 5 5 in
  let view = set [ 12 ] in
  (* border = {7, 11, 13, 17} *)
  let plan = Planner.plan Planner.Chain_border g view in
  Alcotest.(check int) "chain of 3 edges" 3 (Plan.edge_count plan);
  Alcotest.(check bool) "within border" true
    (Plan.touches_only plan (Graph.border g view))

let test_star_planner () =
  let g = Topology.grid 5 5 in
  let view = set [ 12 ] in
  let plan = Planner.plan Planner.Star_rewire g view in
  Alcotest.(check int) "hub + 3 spokes" 3 (Plan.edge_count plan);
  (* All edges share the minimum border node. *)
  let hub = Node_set.min_elt (Graph.border g view) in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "spoke from hub" true
        (Node_id.equal a hub || Node_id.equal b hub))
    plan.Plan.edges

let test_planner_degenerate_border () =
  (* Sole border node: nothing to reconnect. *)
  let g = Topology.path 2 in
  Alcotest.(check int) "empty plan" 0
    (Plan.edge_count (Planner.plan Planner.Ring_splice g (set [ 1 ])))

let test_planner_deterministic () =
  let g = Topology.torus 6 6 in
  let view = set [ 14; 15 ] in
  let a = Planner.plan Planner.Chain_border g view in
  let b = Planner.plan Planner.Chain_border g view in
  Alcotest.(check bool) "same plan" true (Plan.equal a b)

let test_strategy_strings () =
  List.iter
    (fun (s, expected) ->
      match Planner.strategy_of_string s with
      | Ok strategy ->
          Alcotest.(check string) "roundtrip" s
            (Format.asprintf "%a" Planner.pp_strategy strategy);
          ignore expected
      | Error e -> Alcotest.fail e)
    [ ("chain", Planner.Chain_border); ("splice", Planner.Ring_splice); ("star", Planner.Star_rewire) ];
  match Planner.strategy_of_string "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject"

let test_session_single_region () =
  let graph = Topology.ring 16 in
  let outcome = Session.repair ~graph ~crashes:(crash_all 5.0 (set [ 6; 7; 8 ])) () in
  Alcotest.(check bool) "properties" true (Cliffedge.Checker.ok outcome.report);
  Alcotest.(check bool) "healed" true outcome.healed;
  Alcotest.(check int) "one region, one plan" 1 (List.length outcome.plans);
  Alcotest.(check bool) "overlay connected" true
    (Graph.is_connected outcome.healed_overlay)

let test_session_two_regions () =
  let graph = Topology.ring 24 in
  let crashes = crash_all 5.0 (set [ 4; 5 ]) @ crash_all 6.0 (set [ 15; 16; 17 ]) in
  let outcome = Session.repair ~graph ~crashes () in
  Alcotest.(check bool) "properties" true (Cliffedge.Checker.ok outcome.report);
  Alcotest.(check bool) "healed" true outcome.healed;
  Alcotest.(check int) "two plans" 2 (List.length outcome.plans)

let test_session_cascade_still_heals () =
  (* Node 10 crashes while the {8,9} agreement is still in flight: the
     region grows to {8,9,10} before anything is decided, and the splice
     lands on the final border. *)
  let graph = Topology.ring 20 in
  let crashes = crash_all 5.0 (set [ 8; 9 ]) @ [ (15.0, n 10) ] in
  let outcome = Session.repair ~graph ~crashes () in
  Alcotest.(check bool) "properties" true (Cliffedge.Checker.ok outcome.report);
  Alcotest.(check bool) "healed despite cascade" true outcome.healed

let test_session_late_cascade_reports_honestly () =
  (* If the cascade instead kills a border node AFTER the plan was
     agreed, the plan may name a now-dead endpoint; the session must
     report healed=false rather than pretend (the CD properties still
     hold). *)
  let graph = Topology.ring 20 in
  let crashes = crash_all 5.0 (set [ 8; 9 ]) @ [ (200.0, n 10) ] in
  let outcome = Session.repair ~graph ~crashes () in
  Alcotest.(check bool) "properties" true (Cliffedge.Checker.ok outcome.report);
  Alcotest.(check bool) "honest failure report" false outcome.healed

let test_session_all_strategies_heal_grid () =
  let graph = Topology.grid 6 6 in
  let crashes = crash_all 5.0 (set [ 14; 15 ]) in
  List.iter
    (fun strategy ->
      let outcome = Session.repair ~strategy ~graph ~crashes () in
      Alcotest.(check bool) "properties" true (Cliffedge.Checker.ok outcome.report);
      Alcotest.(check bool)
        (Format.asprintf "healed with %a" Planner.pp_strategy strategy)
        true outcome.healed)
    [ Planner.Chain_border; Planner.Ring_splice; Planner.Star_rewire ]

let suite =
  ( "repair",
    [
      Alcotest.test_case "plan normalization" `Quick test_make_normalizes;
      Alcotest.test_case "plan equal/union" `Quick test_equal_union;
      Alcotest.test_case "plan apply" `Quick test_apply;
      Alcotest.test_case "touches_only" `Quick test_touches_only;
      Alcotest.test_case "heals detects cut" `Quick test_heals_detects_disconnection;
      Alcotest.test_case "heals trivial" `Quick test_heals_trivial_cases;
      Alcotest.test_case "ring splice" `Quick test_ring_splice_planner;
      Alcotest.test_case "chain planner" `Quick test_chain_planner_on_big_border;
      Alcotest.test_case "star planner" `Quick test_star_planner;
      Alcotest.test_case "degenerate border" `Quick test_planner_degenerate_border;
      Alcotest.test_case "planner deterministic" `Quick test_planner_deterministic;
      Alcotest.test_case "strategy strings" `Quick test_strategy_strings;
      Alcotest.test_case "session single region" `Quick test_session_single_region;
      Alcotest.test_case "session two regions" `Quick test_session_two_regions;
      Alcotest.test_case "session cascade" `Quick test_session_cascade_still_heals;
      Alcotest.test_case "session late cascade honest" `Quick
        test_session_late_cascade_reports_honestly;
      Alcotest.test_case "session all strategies" `Quick
        test_session_all_strategies_heal_grid;
    ] )

(* ------------------ churn lifecycle ------------------ *)

module Churn = Cliffedge_repair.Churn

let test_churn_multi_epoch () =
  let rng = Cliffedge_prng.Prng.create 21 in
  let graph = Topology.ring 40 in
  let outcome =
    Churn.run ~graph ~next_wave:(Churn.random_wave rng ~size:3) ~epochs:4 ()
  in
  Alcotest.(check int) "four epochs ran" 4 (List.length outcome.epochs);
  Alcotest.(check bool) "every epoch ok" true outcome.all_ok;
  Alcotest.(check int) "12 nodes lost" (40 - 12)
    (Graph.node_count outcome.final_overlay);
  Alcotest.(check bool) "final overlay connected" true
    (Graph.is_connected outcome.final_overlay)

let test_churn_overlays_shrink_monotonically () =
  let rng = Cliffedge_prng.Prng.create 5 in
  let graph = Topology.torus 6 6 in
  let outcome =
    Churn.run ~graph ~next_wave:(Churn.random_wave rng ~size:2) ~epochs:5 ()
  in
  let sizes =
    List.map (fun (e : Churn.epoch) -> Graph.node_count e.overlay) outcome.epochs
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (decreasing sizes);
  Alcotest.(check bool) "all ok" true outcome.all_ok

let test_churn_stops_when_overlay_too_small () =
  let rng = Cliffedge_prng.Prng.create 1 in
  let graph = Topology.ring 8 in
  (* size-3 waves: 8 -> 5 -> stop (5 < 3 + 2 fails only at < 5, so one
     more: 5 -> 2? no, 5 >= 5 runs, leaving 2, then stops). *)
  let outcome =
    Churn.run ~graph ~next_wave:(Churn.random_wave rng ~size:3) ~epochs:10 ()
  in
  Alcotest.(check bool) "stopped early" true (List.length outcome.epochs < 10);
  Alcotest.(check bool) "all ok" true outcome.all_ok

let test_churn_pp_smoke () =
  let rng = Cliffedge_prng.Prng.create 3 in
  let graph = Topology.ring 20 in
  let outcome =
    Churn.run ~graph ~next_wave:(Churn.random_wave rng ~size:2) ~epochs:2 ()
  in
  let s = Format.asprintf "%a" Churn.pp outcome in
  Alcotest.(check bool) "describes epochs" true (String.length s > 40)

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "churn multi-epoch" `Quick test_churn_multi_epoch;
        Alcotest.test_case "churn shrinks" `Quick test_churn_overlays_shrink_monotonically;
        Alcotest.test_case "churn stops early" `Quick test_churn_stops_when_overlay_too_small;
        Alcotest.test_case "churn pp" `Quick test_churn_pp_smoke;
      ] )
