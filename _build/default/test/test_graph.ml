(* Unit and property tests for the knowledge-graph library. *)

open Cliffedge_graph

let node = Node_id.of_int

let set = Node_set.of_ints

(* The Fig. 1-style test fixture: a path 0-1-2-3-4 plus a triangle
   2-5, 3-5. *)
let fixture =
  Graph.of_edges [ (0, 1); (1, 2); (2, 3); (3, 4); (2, 5); (3, 5) ]

let test_empty () =
  Alcotest.(check int) "nodes" 0 (Graph.node_count Graph.empty);
  Alcotest.(check int) "edges" 0 (Graph.edge_count Graph.empty);
  Alcotest.(check bool) "not connected" false (Graph.is_connected Graph.empty)

let test_add_node_idempotent () =
  let g = Graph.add_node (node 3) (Graph.add_node (node 3) Graph.empty) in
  Alcotest.(check int) "one node" 1 (Graph.node_count g);
  Alcotest.(check int) "degree 0" 0 (Graph.degree g (node 3))

let test_add_edge () =
  let g = Graph.of_edges [ (0, 1) ] in
  Alcotest.(check bool) "mem 0-1" true (Graph.mem_edge (node 0) (node 1) g);
  Alcotest.(check bool) "mem 1-0 (undirected)" true (Graph.mem_edge (node 1) (node 0) g);
  Alcotest.(check int) "edge count" 1 (Graph.edge_count g)

let test_add_edge_idempotent () =
  let g = Graph.of_edges [ (0, 1); (1, 0); (0, 1) ] in
  Alcotest.(check int) "one edge" 1 (Graph.edge_count g)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> ignore (Graph.of_edges [ (2, 2) ]))

let test_neighbours () =
  Alcotest.(check bool) "n2 neighbours" true
    (Node_set.equal (set [ 1; 3; 5 ]) (Graph.neighbours fixture (node 2)));
  Alcotest.(check bool) "absent node" true
    (Node_set.is_empty (Graph.neighbours fixture (node 99)))

let test_degree () =
  Alcotest.(check int) "deg 0" 1 (Graph.degree fixture (node 0));
  Alcotest.(check int) "deg 2" 3 (Graph.degree fixture (node 2));
  Alcotest.(check int) "max degree" 3 (Graph.max_degree fixture)

let test_edges_listing () =
  Alcotest.(check int) "six edges" 6 (List.length (Graph.edges fixture));
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "u < v" true (Node_id.compare u v < 0))
    (Graph.edges fixture)

let test_border () =
  (* border({2,3}) = {1, 4, 5} *)
  Alcotest.(check bool) "border of {2,3}" true
    (Node_set.equal (set [ 1; 4; 5 ]) (Graph.border fixture (set [ 2; 3 ])));
  (* border of a single node is its neighbourhood *)
  Alcotest.(check bool) "border of {0}" true
    (Node_set.equal (set [ 1 ]) (Graph.border fixture (set [ 0 ])));
  Alcotest.(check bool) "border of everything is empty" true
    (Node_set.is_empty (Graph.border fixture (Graph.nodes fixture)));
  Alcotest.(check bool) "border of empty is empty" true
    (Node_set.is_empty (Graph.border fixture Node_set.empty))

let test_closed_neighbourhood () =
  Alcotest.(check bool) "closed nbhd" true
    (Node_set.equal (set [ 1; 2; 3; 4; 5 ])
       (Graph.closed_neighbourhood fixture (set [ 2; 3 ])))

let test_induced () =
  let sub = Graph.induced fixture (set [ 2; 3; 5 ]) in
  Alcotest.(check int) "nodes" 3 (Graph.node_count sub);
  Alcotest.(check int) "edges" 3 (Graph.edge_count sub);
  Alcotest.(check bool) "no external node" false (Graph.mem_node (node 1) sub)

let test_connected_components () =
  (* {0,1} and {3,4,5} are two components of the induced subgraph. *)
  let comps = Graph.connected_components fixture (set [ 0; 1; 3; 4; 5 ]) in
  Alcotest.(check int) "two components" 2 (List.length comps);
  Alcotest.(check bool) "first" true (Node_set.equal (set [ 0; 1 ]) (List.nth comps 0));
  Alcotest.(check bool) "second" true
    (Node_set.equal (set [ 3; 4; 5 ]) (List.nth comps 1))

let test_connected_components_ignores_foreign () =
  let comps = Graph.connected_components fixture (set [ 0; 99 ]) in
  Alcotest.(check int) "foreign nodes dropped" 1 (List.length comps)

let test_is_connected_subset () =
  Alcotest.(check bool) "connected" true (Graph.is_connected_subset fixture (set [ 2; 3; 5 ]));
  Alcotest.(check bool) "disconnected" false
    (Graph.is_connected_subset fixture (set [ 0; 4 ]));
  Alcotest.(check bool) "empty not connected" false
    (Graph.is_connected_subset fixture Node_set.empty);
  Alcotest.(check bool) "singleton connected" true
    (Graph.is_connected_subset fixture (set [ 4 ]));
  Alcotest.(check bool) "foreign member" false
    (Graph.is_connected_subset fixture (set [ 2; 99 ]))

let test_is_connected_whole () =
  Alcotest.(check bool) "fixture connected" true (Graph.is_connected fixture);
  let two = Graph.of_edges [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "two islands" false (Graph.is_connected two)

let test_bfs_distances () =
  let d = Graph.bfs_distances fixture (node 0) in
  let dist i = Node_map.find (node i) d in
  Alcotest.(check int) "d(0)" 0 (dist 0);
  Alcotest.(check int) "d(1)" 1 (dist 1);
  Alcotest.(check int) "d(4)" 4 (dist 4);
  Alcotest.(check int) "d(5)" 3 (dist 5)

let test_bfs_unreachable () =
  let g = Graph.add_node (node 9) fixture in
  let d = Graph.bfs_distances g (node 0) in
  Alcotest.(check bool) "unreachable absent" true (not (Node_map.mem (node 9) d))

let test_ball () =
  Alcotest.(check bool) "radius 1" true
    (Node_set.equal (set [ 1; 2; 3; 5 ]) (Graph.ball fixture (node 2) ~radius:1));
  Alcotest.(check bool) "radius 0" true
    (Node_set.equal (set [ 2 ]) (Graph.ball fixture (node 2) ~radius:0))

(* Property tests over random graphs. *)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 2 40 in
    let* seed = int_range 0 10_000 in
    let rng = Cliffedge_prng.Prng.create seed in
    return (Topology.erdos_renyi rng n ~p:0.15))

let prop_border_disjoint =
  QCheck2.Test.make ~name:"border(S) is disjoint from S" ~count:100
    QCheck2.Gen.(
      pair gen_graph (int_range 0 10_000))
    (fun (g, seed) ->
      let rng = Cliffedge_prng.Prng.create seed in
      let size = 1 + Cliffedge_prng.Prng.int rng (max 1 (Graph.node_count g - 1)) in
      let s = Cliffedge_workload.Fault_gen.connected_region rng g ~size in
      Node_set.is_empty (Node_set.inter s (Graph.border g s)))

let prop_components_partition =
  QCheck2.Test.make ~name:"components partition the subset" ~count:100
    QCheck2.Gen.(pair gen_graph (int_range 0 10_000))
    (fun (g, seed) ->
      let rng = Cliffedge_prng.Prng.create seed in
      let s =
        Node_set.random_subset rng (Graph.nodes g) ~keep_probability:0.4
      in
      let comps = Graph.connected_components g s in
      let union = List.fold_left Node_set.union Node_set.empty comps in
      let disjoint =
        List.for_all
          (fun c1 ->
            List.for_all
              (fun c2 ->
                Node_set.equal c1 c2 || Node_set.is_empty (Node_set.inter c1 c2))
              comps)
          comps
      in
      Node_set.equal union s && disjoint
      && List.for_all (Graph.is_connected_subset g) comps)

let prop_induced_edge_subset =
  QCheck2.Test.make ~name:"induced subgraph keeps only internal edges" ~count:100
    QCheck2.Gen.(pair gen_graph (int_range 0 10_000))
    (fun (g, seed) ->
      let rng = Cliffedge_prng.Prng.create seed in
      let s = Node_set.random_subset rng (Graph.nodes g) ~keep_probability:0.5 in
      let sub = Graph.induced g s in
      List.for_all
        (fun (u, v) ->
          Node_set.mem u s && Node_set.mem v s && Graph.mem_edge u v g)
        (Graph.edges sub))

let suite =
  ( "graph",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "add_node idempotent" `Quick test_add_node_idempotent;
      Alcotest.test_case "add_edge" `Quick test_add_edge;
      Alcotest.test_case "add_edge idempotent" `Quick test_add_edge_idempotent;
      Alcotest.test_case "self-loop rejected" `Quick test_self_loop_rejected;
      Alcotest.test_case "neighbours" `Quick test_neighbours;
      Alcotest.test_case "degree" `Quick test_degree;
      Alcotest.test_case "edges listing" `Quick test_edges_listing;
      Alcotest.test_case "border" `Quick test_border;
      Alcotest.test_case "closed neighbourhood" `Quick test_closed_neighbourhood;
      Alcotest.test_case "induced" `Quick test_induced;
      Alcotest.test_case "connected components" `Quick test_connected_components;
      Alcotest.test_case "components ignore foreign" `Quick
        test_connected_components_ignores_foreign;
      Alcotest.test_case "is_connected_subset" `Quick test_is_connected_subset;
      Alcotest.test_case "is_connected" `Quick test_is_connected_whole;
      Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
      Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
      Alcotest.test_case "ball" `Quick test_ball;
      QCheck_alcotest.to_alcotest prop_border_disjoint;
      QCheck_alcotest.to_alcotest prop_components_partition;
      QCheck_alcotest.to_alcotest prop_induced_edge_subset;
    ] )
