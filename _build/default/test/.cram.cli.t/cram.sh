  $ cliffedge-cli run --topology ring:8 --region-size 1 --seed 0
  $ cliffedge-cli dot --topology path:4 --region-size 1 --seed 0
  $ cliffedge-cli mcheck --topology path:5 --crash 2,3,1
  $ cliffedge-cli mcheck --topology path:5 --crash 2,3 --raw-fd
  $ cliffedge-cli sweep --topology ring:24 --sizes 1,2 --seed 1
  $ cliffedge-cli paper atlantis
  $ cliffedge-cli paper fig2 --seed 0
  $ cliffedge-cli run --topology ring:10 --region-size 2 --seed 0 --timeline
