(* Tests for union-find and incremental components. *)

open Cliffedge_graph
module Dsu = Cliffedge_graph.Dsu

let test_singletons () =
  let d = Dsu.create () in
  Dsu.add d 1;
  Dsu.add d 5;
  Alcotest.(check int) "count" 2 (Dsu.count d);
  Alcotest.(check int) "classes" 2 (Dsu.class_count d);
  Alcotest.(check bool) "not same" false (Dsu.same d 1 5)

let test_add_idempotent () =
  let d = Dsu.create () in
  Dsu.add d 3;
  Dsu.add d 3;
  Alcotest.(check int) "count" 1 (Dsu.count d)

let test_union_merges () =
  let d = Dsu.create () in
  Dsu.union d 1 2;
  Dsu.union d 3 4;
  Alcotest.(check int) "two classes" 2 (Dsu.class_count d);
  Dsu.union d 2 3;
  Alcotest.(check int) "one class" 1 (Dsu.class_count d);
  Alcotest.(check bool) "same" true (Dsu.same d 1 4)

let test_union_idempotent () =
  let d = Dsu.create () in
  Dsu.union d 1 2;
  Dsu.union d 2 1;
  Alcotest.(check int) "still one class" 1 (Dsu.class_count d);
  Alcotest.(check int) "two elements" 2 (Dsu.count d)

let test_find_is_canonical () =
  let d = Dsu.create () in
  Dsu.union d 1 2;
  Dsu.union d 2 7;
  let r = Dsu.find d 1 in
  Alcotest.(check int) "same root" r (Dsu.find d 7);
  Alcotest.(check int) "same root 2" r (Dsu.find d 2)

let test_classes_listing () =
  let d = Dsu.create () in
  Dsu.union d 5 3;
  Dsu.add d 9;
  Dsu.union d 1 2;
  Alcotest.(check (list (list int))) "classes" [ [ 1; 2 ]; [ 3; 5 ]; [ 9 ] ]
    (Dsu.classes d)

let test_sparse_growth () =
  let d = Dsu.create () in
  Dsu.add d 10_000;
  Dsu.union d 10_000 3;
  Alcotest.(check bool) "spanning" true (Dsu.same d 3 10_000)

let test_negative_rejected () =
  let d = Dsu.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Dsu.add: negative element")
    (fun () -> Dsu.add d (-1))

let test_incremental_components_match_bfs () =
  (* Incrementally absorbing a random crash order must agree with the
     from-scratch BFS at every step. *)
  let rng = Cliffedge_prng.Prng.create 99 in
  let graph = Topology.torus 6 6 in
  let order =
    Cliffedge_prng.Prng.shuffle_list rng (Node_set.elements (Graph.nodes graph))
  in
  let order = List.filteri (fun i _ -> i < 20) order in
  let inc = Dsu.Components.create graph in
  ignore
    (List.fold_left
       (fun added p ->
         Dsu.Components.add inc p;
         let added = Node_set.add p added in
         let expected = Graph.connected_components graph added in
         let got = Dsu.Components.components inc in
         if not (List.for_all2 Node_set.equal expected got) then
           Alcotest.failf "divergence after adding %a" Node_id.pp p;
         added)
       Node_set.empty order)

let prop_dsu_equals_graph_components =
  QCheck2.Test.make ~name:"DSU components equal BFS components" ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Cliffedge_prng.Prng.create seed in
      let graph = Topology.erdos_renyi rng 30 ~p:0.1 in
      let subset =
        Node_set.random_subset rng (Graph.nodes graph) ~keep_probability:0.5
      in
      let inc = Dsu.Components.create graph in
      Node_set.iter (Dsu.Components.add inc) subset;
      let expected = Graph.connected_components graph subset in
      let got = Dsu.Components.components inc in
      List.length expected = List.length got
      && List.for_all2 Node_set.equal expected got)

let suite =
  ( "dsu",
    [
      Alcotest.test_case "singletons" `Quick test_singletons;
      Alcotest.test_case "add idempotent" `Quick test_add_idempotent;
      Alcotest.test_case "union merges" `Quick test_union_merges;
      Alcotest.test_case "union idempotent" `Quick test_union_idempotent;
      Alcotest.test_case "find canonical" `Quick test_find_is_canonical;
      Alcotest.test_case "classes listing" `Quick test_classes_listing;
      Alcotest.test_case "sparse growth" `Quick test_sparse_growth;
      Alcotest.test_case "negative rejected" `Quick test_negative_rejected;
      Alcotest.test_case "incremental matches BFS" `Quick
        test_incremental_components_match_bfs;
      QCheck_alcotest.to_alcotest prop_dsu_equals_graph_components;
    ] )
