The CLI is fully deterministic given a seed, so its output is testable
verbatim.

A small agreement with verification:

  $ cliffedge-cli run --topology ring:8 --region-size 1 --seed 0
  scenario "ring:8 seed=0" (seed 0)
    t=    10.0  crash n7
    t=    22.0  n0 decides "plan(n0,1)" on {n7}
    t=    23.6  n6 decides "plan(n0,1)" on {n7}
    messages: 2 sent (10 units), 2 delivered, 0 dropped, 2 node(s) involved
    all properties hold (2 decision(s), 2 pair(s) checked)

Graphviz export of a fault pattern:

  $ cliffedge-cli dot --topology path:4 --region-size 1 --seed 0
  graph cliffedge {
    node [shape=circle, style=filled, fillcolor=white];
    0 [label="n0", fillcolor="white"];
    1 [label="n1", fillcolor="white"];
    2 [label="n2", fillcolor="orange"];
    3 [label="n3", fillcolor="indianred1"];
    0 -- 1;
    1 -- 2;
    2 -- 3;
  }

Exhaustive model checking from the command line, both detector models:

  $ cliffedge-cli mcheck --topology path:5 --crash 2,3,1
  333 state(s), 596 transition(s), 11 leaf(ves), 0 violation(s)
  $ cliffedge-cli mcheck --topology path:5 --crash 2,3 --raw-fd
  90 state(s), 162 transition(s), 5 leaf(ves), 5 violation(s)
    CD5 (uniform border agreement): n3 decided {n2} but border node n1 decided {n2, n3}
    after: crash(2) ; notify(1 of 2) ; deliver(1->3) ; notify(3 of 2) ; crash(3) ; notify(1 of 3) ; deliver(1->4) ; deliver(3->1) ; notify(4 of 3) ; notify(4 of 2) ; deliver(4->1)
    CD5 (uniform border agreement): n3 decided {n2} but border node n1 decided {n2, n3}
    after: crash(2) ; notify(1 of 2) ; deliver(1->3) ; notify(3 of 2) ; crash(3) ; notify(1 of 3) ; deliver(1->4) ; notify(4 of 3) ; notify(4 of 2) ; deliver(4->1)
    CD5 (uniform border agreement): n3 decided {n2} but border node n1 decided {n2, n3}
    after: crash(2) ; notify(1 of 2) ; deliver(1->3) ; notify(3 of 2) ; crash(3) ; notify(1 of 3) ; deliver(3->1) ; notify(4 of 3) ; notify(4 of 2) ; deliver(4->1)
    CD5 (uniform border agreement): n3 decided {n2} but border node n1 decided {n2, n3}
    after: crash(2) ; notify(1 of 2) ; deliver(1->3) ; notify(3 of 2) ; crash(3) ; notify(1 of 3) ; notify(4 of 3) ; notify(4 of 2) ; deliver(4->1)
    CD5 (uniform border agreement): n3 decided {n2} but border node n1 decided {n2, n3}
    after: crash(2) ; notify(1 of 2) ; deliver(1->3) ; notify(3 of 2) ; crash(3) ; notify(4 of 3) ; notify(4 of 2) ; deliver(4->1) ; notify(1 of 3)
  [1]

A region-size sweep:

  $ cliffedge-cli sweep --topology ring:24 --sizes 1,2 --seed 1
  == region-size sweep on ring:24 ==
  +---+--------+--------+------+-------+----+------+
  | k | border | rounds | msgs | units | t  | ok   |
  +===+========+========+======+=======+====+======+
  | 1 | 2      | 1      | 2    | 10    | 24 | true |
  | 2 | 2      | 1      | 6    | 30    | 35 | true |
  +---+--------+--------+------+-------+----+------+
  

Unknown paper scenario names are rejected:

  $ cliffedge-cli paper atlantis
  unknown scenario "atlantis" (fig1a | fig1b | fig2)
  [2]

The paper's Fig. 2 scenario (arbitration leaves only the top-ranked
domain decided):

  $ cliffedge-cli paper fig2 --seed 0
  scenario "fig2: cluster of four adjacent faulty domains" (seed 0)
    t=    10.0  crash n1
    t=    10.0  crash n2
    t=    10.0  crash n4
    t=    10.0  crash n5
    t=    10.0  crash n7
    t=    10.0  crash n8
    t=    10.0  crash n10
    t=    10.0  crash n11
    t=    39.7  n12 decides "plan(n9,2)" on {n10, n11}
    t=    47.0  n9 decides "plan(n9,2)" on {n10, n11}
    messages: 18 sent (90 units), 8 delivered, 10 dropped, 10 node(s) involved
    all properties hold (2 decision(s), 13 pair(s) checked)

The timeline narrative:

  $ cliffedge-cli run --topology ring:10 --region-size 2 --seed 0 --timeline
  scenario "ring:10 seed=0" (seed 0)
    t=    10.0  crash n2
    t=    10.0  crash n3
    t=    27.3  n1 decides "plan(n1,2)" on {n2, n3}
    t=    35.1  n4 decides "plan(n1,2)" on {n2, n3}
    messages: 6 sent (30 units), 2 delivered, 4 dropped, 4 node(s) involved
    all properties hold (2 decision(s), 4 pair(s) checked)
  
  t=    10.00  n2         CRASHES
  t=    10.00  n3         CRASHES
  t=    13.87  n4         proposes {n3}
  t=    16.25  n1         proposes {n2}
  t=    22.79  n4         abandons attempt on {n3}
  t=    22.79  n4         proposes {n2, n3}
  t=    22.79  n4         rejects {n3}
  t=    26.98  n1         abandons attempt on {n2}
  t=    26.98  n1         proposes {n2, n3}
  t=    26.98  n1         rejects {n2}
  t=    27.27  n1         DECIDES "plan(n1,2)" on {n2, n3}
  t=    35.07  n4         DECIDES "plan(n1,2)" on {n2, n3}
