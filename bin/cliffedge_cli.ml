(* Command-line front end.

   Subcommands:
     run    — run one cliff-edge agreement on a generated topology
     paper  — run one of the paper's figure scenarios (fig1a, fig1b, fig2)
     sweep  — region-size sweep on one topology, one table row per size
     dot    — emit Graphviz source for a topology and fault pattern

   Examples:
     cliffedge_cli run --topology torus:16x16 --region-size 6 --seed 3
     cliffedge_cli run --topology ring:64 --cascade 3 --raw-fd
     cliffedge_cli run --topology ring:32 --faults drop:0.2,dup:0.05 --transport arq
     cliffedge_cli paper fig1b
     cliffedge_cli sweep --topology torus:16x16 --sizes 1,2,4,8,16
     cliffedge_cli mcheck --topology path:3 --crash 1 --max-drops 1
     cliffedge_cli dot --topology grid:8x8 --region-size 5 > g.dot *)

open Cmdliner
open Cliffedge_graph
module Runner = Cliffedge.Runner
module Checker = Cliffedge.Checker
module Scenario = Cliffedge.Scenario
module Fault_gen = Cliffedge_workload.Fault_gen
module Latency = Cliffedge_net.Latency
module Faults = Cliffedge_net.Faults
module Transport = Cliffedge_net.Transport
module Prng = Cliffedge_prng.Prng
module Table = Cliffedge_report.Table
module Obs = Cliffedge_obs

(* ------------------------------------------------------------------ *)
(* Shared argument parsing                                             *)

let msg_result r = Result.map_error (fun e -> `Msg e) r

let topology_conv =
  let parse s = msg_result (Topology.spec_of_string s) in
  Arg.conv (parse, Topology.pp_spec)

let latency_conv =
  let parse s = msg_result (Latency.of_string s) in
  Arg.conv (parse, Latency.pp)

let faults_conv =
  let parse s = msg_result (Faults.of_string s) in
  Arg.conv (parse, Faults.pp)

let topology_arg =
  Arg.(
    value
    & opt topology_conv (Topology.Ring 32)
    & info [ "t"; "topology" ] ~docv:"SPEC"
        ~doc:
          "Topology: ring:N, path:N, grid:WxH, torus:WxH, complete:N, star:N, \
           tree:N, er:N:P, ws:N:K:BETA, ba:N:M, geo:N:R.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let region_size_arg =
  Arg.(
    value
    & opt int 3
    & info [ "k"; "region-size" ] ~docv:"K" ~doc:"Crashed region size in nodes.")

let cascade_arg =
  Arg.(
    value
    & opt int 0
    & info [ "cascade" ] ~docv:"DEPTH"
        ~doc:"Extend the region by DEPTH additional staggered crashes.")

let no_early_arg =
  Arg.(
    value & flag
    & info [ "no-early-termination" ]
        ~doc:
          "Run the base |B|-1-round protocol instead of the footnote-6 \
           early-termination mode (the default).")

let raw_fd_arg =
  Arg.(
    value & flag
    & info [ "raw-fd" ]
        ~doc:
          "Use the raw perfect failure detector (notifications may overtake \
           in-flight messages), reproducing the CD5 anomaly of DESIGN.md.")

let msg_latency_arg =
  Arg.(
    value
    & opt latency_conv (Latency.Uniform { min = 1.0; max = 10.0 })
    & info [ "latency" ] ~docv:"MODEL" ~doc:"Message latency: const:D, uniform:A:B, exp:MIN:MEAN.")

let fd_latency_arg =
  Arg.(
    value
    & opt latency_conv (Latency.Uniform { min = 1.0; max = 20.0 })
    & info [ "detection-latency" ] ~docv:"MODEL" ~doc:"Failure-detection latency model.")

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Fault plan for the network, e.g. drop:0.1,dup:0.02,reorder:3 or \
           cut:12-30:4-9 (repeatable clauses, comma-separated).  Without \
           $(b,--faults) the channels are reliable FIFO, as the paper assumes.")

let transport_arg =
  Arg.(
    value
    & opt (enum [ ("arq", `Arq); ("raw", `Raw) ]) `Arq
    & info [ "transport" ] ~docv:"MODE"
        ~doc:
          "Channel stack over a faulty network: $(b,arq) (default) repairs it \
           with the go-back-N reliable transport; $(b,raw) exposes the faults \
           to the protocol directly.  Only meaningful with $(b,--faults).")

let channel_of ~faults ~transport =
  match faults with
  | None -> Transport.Reliable
  | Some plan -> (
      match transport with
      | `Raw -> Transport.Raw_faulty plan
      | `Arq -> Transport.Arq_over_faulty (plan, Transport.default_policy))

let options ~seed ~no_early ~raw_fd ~msg_latency ~fd_latency ~faults ~transport =
  {
    Runner.default_options with
    seed;
    early_stopping = not no_early;
    channel_consistent_fd = not raw_fd;
    channel = channel_of ~faults ~transport;
    message_latency = msg_latency;
    detection_latency = fd_latency;
  }

let build_workload ~spec ~seed ~region_size ~cascade =
  let rng = Prng.create seed in
  let graph = Topology.build rng spec in
  let region = Fault_gen.connected_region rng graph ~size:region_size in
  let crashes, final_region =
    if cascade > 0 then
      Fault_gen.cascade rng graph ~seed_region:region ~depth:cascade ~start:10.0
        ~interval:30.0
    else (Fault_gen.crash_at 10.0 region, region)
  in
  (graph, crashes, final_region)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:"Log every protocol step (proposals, rejections, rounds) to stderr.")

let setup_logs verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Runner.log_src (Some Logs.Debug)
  end

let run_cmd =
  let action spec seed region_size cascade no_early raw_fd msg_latency fd_latency
      faults transport timeline verbose =
    setup_logs verbose;
    let graph, crashes, _ = build_workload ~spec ~seed ~region_size ~cascade in
    let scenario =
      Scenario.make
        ~options:
          (options ~seed ~no_early ~raw_fd ~msg_latency ~fd_latency ~faults ~transport)
        ~name:(Format.asprintf "%a seed=%d" Topology.pp_spec spec seed)
        ~graph ~crashes ()
    in
    let outcome, report = Scenario.execute scenario in
    Format.printf "%a@." Scenario.pp_result (scenario, outcome, report);
    if timeline then
      Format.printf "@.%a"
        (Cliffedge.Timeline.pp ~names:scenario.Scenario.names)
        (Cliffedge.Timeline.of_outcome ~value_to_string:Fun.id outcome);
    if Checker.ok report then 0 else 1
  in
  let timeline_arg =
    Arg.(
      value & flag
      & info [ "timeline" ] ~doc:"Print the full chronological event narrative.")
  in
  let term =
    Term.(
      const action $ topology_arg $ seed_arg $ region_size_arg $ cascade_arg
      $ no_early_arg $ raw_fd_arg $ msg_latency_arg $ fd_latency_arg $ faults_arg
      $ transport_arg $ timeline_arg $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one cliff-edge agreement and verify CD1-CD7.")
    term

(* ------------------------------------------------------------------ *)
(* paper                                                               *)

let paper_cmd =
  let action name seed =
    let scenario =
      match name with
      | "fig1a" -> Cliffedge.Paper_scenarios.fig1a
      | "fig1b" -> Cliffedge.Paper_scenarios.fig1b ()
      | "fig2" -> Cliffedge.Paper_scenarios.fig2
      | other ->
          Format.eprintf "unknown scenario %S (fig1a | fig1b | fig2)@." other;
          exit 2
    in
    let scenario = Scenario.with_seed scenario seed in
    let outcome, report = Scenario.execute scenario in
    Format.printf "%a@." Scenario.pp_result (scenario, outcome, report);
    if Checker.ok report then 0 else 1
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"fig1a, fig1b or fig2.")
  in
  Cmd.v
    (Cmd.info "paper" ~doc:"Run one of the paper's figure scenarios.")
    Term.(const action $ name_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)

let sweep_cmd =
  let action spec seed sizes =
    let table =
      Table.create
        ~title:(Format.asprintf "region-size sweep on %a" Topology.pp_spec spec)
        ~columns:[ "k"; "border"; "rounds"; "msgs"; "units"; "t"; "ok" ]
    in
    List.iter
      (fun k ->
        let graph, crashes, region =
          build_workload ~spec ~seed ~region_size:k ~cascade:0
        in
        let outcome =
          Runner.run ~graph ~crashes ~propose_value:Scenario.default_propose ()
        in
        let report = Checker.check ~value_equal:String.equal outcome in
        Table.add_row table
          [
            Table.cell "%d" k;
            Table.cell "%d" (Node_set.cardinal (Graph.border graph region));
            Table.cell "%d" (Runner.max_round outcome);
            Table.cell "%d" (Cliffedge_net.Stats.sent outcome.stats);
            Table.cell "%d" (Cliffedge_net.Stats.units_sent outcome.stats);
            Table.cell "%.0f" outcome.duration;
            Table.cell "%b" (Checker.ok report);
          ])
      sizes;
    Table.print table;
    0
  in
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "sizes" ] ~docv:"K1,K2,..." ~doc:"Region sizes to sweep.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep the crashed-region size and tabulate costs.")
    Term.(const action $ topology_arg $ seed_arg $ sizes_arg)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)

let dot_cmd =
  let action spec seed region_size =
    let graph, _, region = build_workload ~spec ~seed ~region_size ~cascade:0 in
    let style =
      { Dot.default_style with crashed = region; border = Graph.border graph region }
    in
    print_string (Dot.to_string ~style graph);
    0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz source with the fault pattern highlighted.")
    Term.(const action $ topology_arg $ seed_arg $ region_size_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)

let trace_cmd =
  let action spec seed region_size cascade no_early raw_fd msg_latency fd_latency
      faults transport format nodes kinds instance metrics =
    List.iter
      (fun k ->
        if not (List.exists (String.equal k) Obs.Event.kind_names) then begin
          Format.eprintf "unknown event kind %S (expected one of: %s)@." k
            (String.concat ", " Obs.Event.kind_names);
          exit 2
        end)
      kinds;
    let graph, crashes, _ = build_workload ~spec ~seed ~region_size ~cascade in
    let outcome =
      Runner.run
        ~options:
          (options ~seed ~no_early ~raw_fd ~msg_latency ~fd_latency ~faults ~transport)
        ~graph ~crashes ~propose_value:Scenario.default_propose ()
    in
    let keep e =
      (match nodes with
      | [] -> true
      | ns -> List.exists (Int.equal (Node_id.to_int e.Obs.Event.node)) ns)
      && (match kinds with
         | [] -> true
         | ks -> List.exists (String.equal (Obs.Event.kind_name e.Obs.Event.kind)) ks)
      &&
      match instance with
      | None -> true
      | Some key -> (
          match e.Obs.Event.instance with
          | Some i -> String.equal i key
          | None -> false)
    in
    let events = List.filter keep (Obs.Log.to_list outcome.Runner.obs) in
    (match format with
    | `Pp -> Format.printf "%a" Obs.Export.pp events
    | `Jsonl -> print_string (Obs.Export.jsonl events)
    | `Chrome ->
        print_string (Cliffedge_report.Json.to_string (Obs.Export.chrome events)));
    if metrics then
      (* Latency histograms always come from the unfiltered log: a
         filter that drops a parent must not distort a latency. *)
      Format.printf "%a" Obs.Metrics.pp (Obs.Metrics.of_log outcome.Runner.obs);
    0
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("pp", `Pp); ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Pp
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,pp) (human-readable, default), $(b,jsonl) (one \
             JSON object per event) or $(b,chrome) (Chrome trace_event JSON, \
             loadable in Perfetto or about:tracing).")
  in
  let nodes_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "node" ] ~docv:"N1,N2,..."
          ~doc:"Keep only events of these nodes (default: all).")
  in
  let kinds_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "kind" ] ~docv:"K1,K2,..."
          ~doc:
            "Keep only these event kinds, e.g. crash,suspect,send,deliver,\
             retransmit,stall,propose,reject,round,abort,early-outcome,decide.")
  in
  let instance_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "instance" ] ~docv:"KEY"
          ~doc:
            "Keep only events of this consensus instance (the proposed view's \
             fingerprint, e.g. 3.4 for view {n3, n4}).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Also print the run's latency histograms (decide latency, round \
             latency, ARQ retransmit delay, failure-detection lag).")
  in
  let term =
    Term.(
      const action $ topology_arg $ seed_arg $ region_size_arg $ cascade_arg
      $ no_early_arg $ raw_fd_arg $ msg_latency_arg $ fd_latency_arg $ faults_arg
      $ transport_arg $ format_arg $ nodes_arg $ kinds_arg $ instance_arg
      $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one cliff-edge agreement and print its causal event trace \
          (optionally filtered, in pp/jsonl/Chrome format).")
    term

(* ------------------------------------------------------------------ *)
(* mcheck                                                              *)

let mcheck_cmd =
  let action spec crash_ids raw_fd no_early max_states max_drops max_dups =
    let rng = Prng.create 0 in
    let graph = Topology.build rng spec in
    let crashes = List.map Node_id.of_int crash_ids in
    List.iter
      (fun p ->
        if not (Graph.mem_node p graph) then begin
          Format.eprintf "node %a is not in the topology@." Node_id.pp p;
          exit 2
        end)
      crashes;
    let fd = if raw_fd then `Raw else `Channel_consistent in
    let channel =
      if max_drops = 0 && max_dups = 0 then `Reliable_fifo
      else `Lossy { Cliffedge_mcheck.Explorer.max_drops; max_dups }
    in
    let stats =
      Cliffedge_mcheck.Explorer.explore ~fd ~channel ~max_states
        ~early_stopping:(not no_early) ~graph ~crashes ()
    in
    Format.printf "%a@." Cliffedge_mcheck.Explorer.pp_stats stats;
    if Cliffedge_mcheck.Explorer.ok stats then 0 else 1
  in
  let crashes_arg =
    Arg.(
      required
      & opt (some (list int)) None
      & info [ "crash" ] ~docv:"N1,N2,..."
          ~doc:"Nodes to crash, injected in this order.")
  in
  let max_states_arg =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "max-states" ] ~docv:"N" ~doc:"State-space exploration bound.")
  in
  let max_drops_arg =
    Arg.(
      value
      & opt int 0
      & info [ "max-drops" ] ~docv:"N"
          ~doc:
            "Lossy-channel scope: allow the adversary to discard up to N \
             queued messages (0 = reliable channels).")
  in
  let max_dups_arg =
    Arg.(
      value
      & opt int 0
      & info [ "max-dups" ] ~docv:"N"
          ~doc:
            "Lossy-channel scope: allow the adversary to duplicate up to N \
             queued messages (0 = reliable channels).")
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:
         "Exhaustively model-check CD1-CD7 over every schedule of a small \
          configuration.")
    Term.(
      const action $ topology_arg $ crashes_arg $ raw_fd_arg $ no_early_arg
      $ max_states_arg $ max_drops_arg $ max_dups_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "cliff-edge consensus: convergent detection of crashed regions" in
  let info = Cmd.info "cliffedge_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; paper_cmd; sweep_cmd; dot_cmd; trace_cmd; mcheck_cmd ]))
